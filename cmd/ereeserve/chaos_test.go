package main

// Kill-9 chaos harness. The test re-executes this test binary as a
// real ereeserve process (TestMain intercepts via EREE_CHAOS_SERVER),
// arms a crash point via EREE_CRASH (internal/crashpoint), drives a
// fixed request script over real HTTP until the process SIGKILLs
// itself, restarts it over the same state directory, and then acts as
// a well-behaved client: it retries exactly the requests whose
// responses it never fully observed.
//
// Three invariants, checked on every crash schedule:
//
//  1. No lost charges: the recovered spend covers every response the
//     client fully observed before the crash (the write-ahead
//     contract; the safe failure direction is over-charge, never
//     under-charge).
//  2. Budget safety: total recorded spend never exceeds the tenant's
//     budget, across any crash/restart/retry schedule. The script is
//     sized to land exactly on the budget, so any double charge
//     surfaces as a 429 on a later step.
//  3. Determinism through crashes: every response — observed before
//     the crash, replayed after recovery, or charged fresh on retry —
//     is byte-identical to the same step of an uninterrupted run.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain lets the test binary serve as the ereeserve process itself:
// with EREE_CHAOS_SERVER=1 it runs main's run() with the args from
// EREE_CHAOS_ARGS instead of any tests. The child therefore carries
// the exact production serving, recovery, and crash-point code paths.
func TestMain(m *testing.M) {
	if os.Getenv("EREE_CHAOS_SERVER") == "1" {
		var args []string
		if err := json.Unmarshal([]byte(os.Getenv("EREE_CHAOS_ARGS")), &args); err != nil {
			fmt.Fprintln(os.Stderr, "chaos server args:", err)
			os.Exit(2)
		}
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		if err := run(args, os.Stdout, sig); err != nil {
			fmt.Fprintln(os.Stderr, "ereeserve:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const (
	chaosTenantKey = "chaos-tenant-key"
	chaosAdminKey  = "chaos-admin-key"
	// chaosBudgetEps is exactly the script's summed loss: 13 charges of
	// eps 0.5. Any step double-charged by a crash bug pushes a later
	// step over budget and fails the run with a 429.
	chaosBudgetEps = 6.5
)

type chaosStep struct {
	name    string
	path    string
	body    string
	eps     float64
	advance bool
}

// chaosScript is the fixed workload: five releases in epoch 0, an
// admin advance, then five releases, an atomic batch and a cell in
// epoch 1. Every request carries an explicit seq so a retry is
// wire-identical to the original.
func chaosScript() []chaosStep {
	steps := make([]chaosStep, 0, 13)
	for i := 0; i < 5; i++ {
		steps = append(steps, chaosStep{
			name: fmt.Sprintf("epoch0-release-%d", i),
			path: "/v1/release",
			body: fmt.Sprintf(`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":%d}`, i),
			eps:  0.5,
		})
	}
	steps = append(steps, chaosStep{
		name:    "advance",
		path:    "/v1/admin/advance",
		body:    `{"quarters":1}`,
		advance: true,
	})
	for i := 0; i < 5; i++ {
		steps = append(steps, chaosStep{
			name: fmt.Sprintf("epoch1-release-%d", i),
			path: "/v1/release",
			body: fmt.Sprintf(`{"attrs":["ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":%d}`, 5+i),
			eps:  0.5,
		})
	}
	steps = append(steps, chaosStep{
		name: "batch",
		path: "/v1/batch",
		body: `{"seq":10,"requests":[{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5},{"attrs":["ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}]}`,
		eps:  1.0,
	})
	steps = append(steps, chaosStep{
		name: "cell",
		path: "/v1/cell",
		body: `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"values":["44-Retail"],"seq":11}`,
		eps:  0.5,
	})
	return steps
}

func writeChaosConfig(t *testing.T, dir string) string {
	t.Helper()
	cfg := fmt.Sprintf(`{
		"addr": "127.0.0.1:0",
		"admin_key": %q,
		"noise_seed": 7,
		"data_seed": 1,
		"delta_seed": 100,
		"tenants": [
			{"name": "chaos", "key": %q, "definition": "weak-er-ee", "alpha": 0.1, "budget_eps": %g, "budget_delta": 0.5}
		]
	}`, chaosAdminKey, chaosTenantKey, chaosBudgetEps)
	path := filepath.Join(dir, "chaos.json")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// chaosProc is one child ereeserve process.
type chaosProc struct {
	cmd  *exec.Cmd
	out  *syncBuf
	addr string
}

// startChaos boots the re-exec'd server; crash, when non-empty, arms a
// kill point ("name:N" SIGKILLs the process on the Nth hit). extra args
// are appended verbatim (e.g. -replicate-from for a follower).
func startChaos(t *testing.T, cfgPath, stateDir, crash string, extra ...string) *chaosProc {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	args := []string{"-config", cfgPath, "-addr", "127.0.0.1:0", "-state-dir", stateDir}
	args = append(args, extra...)
	raw, _ := json.Marshal(args)
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		"EREE_CHAOS_SERVER=1",
		"EREE_CHAOS_ARGS="+string(raw),
		"EREE_CRASH="+crash,
	)
	out := &syncBuf{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &chaosProc{cmd: cmd, out: out}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if m := listeningRE.FindStringSubmatch(out.String()); m != nil {
			p.addr = m[1]
			break
		}
		if cmd.ProcessState != nil || time.Now().After(deadline) {
			t.Fatalf("chaos server never listened; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Serve only after /readyz: recovery must be complete.
	for {
		resp, err := http.Get("http://" + p.addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("chaos server never became ready; output:\n%s", p.out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitKilled waits for the armed crash to fire and asserts the process
// died by SIGKILL (it killed itself at the crash point).
func (p *chaosProc) waitKilled(t *testing.T) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			t.Fatalf("chaos server exited cleanly, want SIGKILL; output:\n%s", p.out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("chaos server did not die at its crash point; output:\n%s", p.out.String())
	}
}

// stop shuts the child down gracefully and requires a clean exit.
func (p *chaosProc) stop(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown failed: %v; output:\n%s", err, p.out.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("graceful shutdown hung; output:\n%s", p.out.String())
	}
}

var chaosClient = &http.Client{Timeout: 10 * time.Second}

// send drives one step. A step counts as observed only if the full
// response body arrived with status 200 — a torn body (mid-response
// kill) or transport error is unobserved and must be retried.
func send(addr string, step chaosStep) (observed bool, body []byte) {
	key := chaosTenantKey
	if step.advance {
		key = chaosAdminKey
	}
	req, err := http.NewRequest("POST", "http://"+addr+step.path, strings.NewReader(step.body))
	if err != nil {
		return false, nil
	}
	req.Header.Set("X-API-Key", key)
	resp, err := chaosClient.Do(req)
	if err != nil {
		return false, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return false, raw
	}
	return true, raw
}

type chaosStats struct {
	SpentEps     float64 `json:"spent_eps"`
	SpentDelta   float64 `json:"spent_delta"`
	RemainingEps float64 `json:"remaining_eps"`
	Releases     int     `json:"releases"`
	Epoch        int     `json:"epoch"`
	SpendByEpoch []struct {
		Epoch    int     `json:"epoch"`
		Eps      float64 `json:"eps"`
		Delta    float64 `json:"delta"`
		Releases int     `json:"releases"`
	} `json:"spend_by_epoch"`
}

func readStats(t *testing.T, addr string) chaosStats {
	t.Helper()
	req, _ := http.NewRequest("GET", "http://"+addr+"/v1/stats", nil)
	req.Header.Set("X-API-Key", chaosTenantKey)
	resp, err := chaosClient.Do(req)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st chaosStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	return st
}

func readEpoch(t *testing.T, addr string) int {
	t.Helper()
	resp, err := chaosClient.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	var h struct {
		Epoch int `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	return h.Epoch
}

// TestChaosKillRecovery is the crash matrix. Each leg arms one crash
// point, drives the script into the kill, restarts over the same state
// directory, retries the unobserved steps, and checks the three
// invariants against a baseline uninterrupted run.
func TestChaosKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness boots real processes; skipped in -short")
	}
	steps := chaosScript()

	// Baseline: the same script against an uninterrupted server.
	base := t.TempDir()
	cfgPath := writeChaosConfig(t, base)
	baseline := make([][]byte, len(steps))
	var baseStats chaosStats
	{
		proc := startChaos(t, cfgPath, filepath.Join(base, "state"), "")
		for i, step := range steps {
			ok, body := send(proc.addr, step)
			if !ok {
				t.Fatalf("baseline step %s failed: %s", step.name, body)
			}
			baseline[i] = body
		}
		baseStats = readStats(t, proc.addr)
		proc.stop(t)
	}
	if baseStats.SpentEps != chaosBudgetEps {
		t.Fatalf("baseline spent %g, want the exact budget %g", baseStats.SpentEps, chaosBudgetEps)
	}

	// Crash legs. Sync counts are deterministic under this serial
	// client: boot journals the tenant registration (sync 1) and the
	// node's fencing term (sync 2), each charge is one sync, the
	// advance's dataset record is sync 8 (periodic digest records ride
	// in their trigger's group commit, so they add no syncs).
	legs := []struct {
		name  string
		crash string
	}{
		// Charge fsynced, killed before any response byte.
		{"before-response", "serve-before-response:3"},
		// Killed halfway through the response body (torn response).
		{"mid-response", "serve-mid-response:2"},
		// Killed before the spend record's fsync: charge lost with the
		// process, client saw nothing — retry must charge fresh.
		{"before-sync", "wal-before-sync:4"},
		// Killed right after the fsync: charge durable, response lost.
		{"after-sync", "wal-after-sync:5"},
		// Killed after the dataset-advance record was durable but before
		// tenant ledgers advanced: recovery must complete the epoch.
		{"advance-after-record", "advance-after-record:1"},
		// Killed before the dataset-advance record's fsync: the advance
		// must be absent after recovery, and the retry must continue the
		// exact seed lineage.
		{"advance-lost", "wal-before-sync:8"},
	}
	for _, leg := range legs {
		t.Run(leg.name, func(t *testing.T) {
			dir := t.TempDir()
			stateDir := filepath.Join(dir, "state")
			proc := startChaos(t, writeChaosConfig(t, dir), stateDir, leg.crash)

			observed := make([]bool, len(steps))
			crashBodies := make([][]byte, len(steps))
			var observedEps float64
			for i, step := range steps {
				observed[i], crashBodies[i] = send(proc.addr, step)
				if observed[i] {
					observedEps += step.eps
				}
			}
			proc.waitKilled(t)

			// Invariant 3 (first half): everything fully observed before
			// the crash matches the uninterrupted run byte for byte.
			for i := range steps {
				if observed[i] && !steps[i].advance && string(crashBodies[i]) != string(baseline[i]) {
					t.Fatalf("step %s observed before crash differs from baseline:\n  crash:    %s\n  baseline: %s",
						steps[i].name, crashBodies[i], baseline[i])
				}
			}

			// Restart over the same state directory.
			proc2 := startChaos(t, writeChaosConfig(t, dir), stateDir, "")
			recovered := readStats(t, proc2.addr)

			// Invariant 1: no observed response without a recovered charge.
			if recovered.SpentEps+1e-9 < observedEps {
				t.Fatalf("recovered spend %g < observed charges %g: a response escaped without a durable record",
					recovered.SpentEps, observedEps)
			}
			// Invariant 2: never over budget.
			if recovered.SpentEps > chaosBudgetEps+1e-9 {
				t.Fatalf("recovered spend %g exceeds budget %g", recovered.SpentEps, chaosBudgetEps)
			}

			// Retry every step whose response was lost. The advance is
			// retried only if its epoch is genuinely absent — a client can
			// see that from /healthz, and re-advancing a recovered epoch
			// would be a new advance, not a retry.
			for i, step := range steps {
				if observed[i] {
					continue
				}
				if step.advance && readEpoch(t, proc2.addr) >= 1 {
					continue
				}
				ok, body := send(proc2.addr, step)
				if !ok {
					t.Fatalf("retry of %s failed after recovery: %s", step.name, body)
				}
				if !step.advance && string(body) != string(baseline[i]) {
					t.Fatalf("retry of %s differs from baseline:\n  retry:    %s\n  baseline: %s",
						step.name, body, baseline[i])
				}
			}

			// Invariant 2 again after the retries, then full convergence:
			// the crashed-and-recovered world ends bit-identical to the
			// uninterrupted one.
			final := readStats(t, proc2.addr)
			if final.SpentEps > chaosBudgetEps+1e-9 {
				t.Fatalf("final spend %g exceeds budget %g", final.SpentEps, chaosBudgetEps)
			}
			if !reflect.DeepEqual(final, baseStats) {
				t.Fatalf("final stats diverge from baseline:\n  final:    %+v\n  baseline: %+v", final, baseStats)
			}
			proc2.stop(t)
		})
	}
}

// --- Two-node failover chaos ---------------------------------------

// chaosReplStatus mirrors the /v1/replication/status body.
type chaosReplStatus struct {
	Role           string `json:"role"`
	Term           uint64 `json:"term"`
	Fenced         bool   `json:"fenced"`
	DurableRecords uint64 `json:"durable_records"`
	AppliedRecords uint64 `json:"applied_records"`
	LagRecords     int64  `json:"replication_lag_records"`
	StateDigest    string `json:"state_digest"`
	Diverged       string `json:"diverged"`
}

func readReplStatus(t *testing.T, addr string) chaosReplStatus {
	t.Helper()
	req, _ := http.NewRequest("GET", "http://"+addr+"/v1/replication/status", nil)
	req.Header.Set("X-API-Key", chaosAdminKey)
	resp, err := chaosClient.Do(req)
	if err != nil {
		t.Fatalf("replication status: %v", err)
	}
	defer resp.Body.Close()
	var st chaosReplStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("replication status decode: %v", err)
	}
	return st
}

// chaosReady mirrors the /readyz body.
type chaosReady struct {
	Ready bool   `json:"ready"`
	State string `json:"state"`
	Role  string `json:"role"`
	Term  uint64 `json:"term"`
	Lag   int64  `json:"replication_lag_records"`
}

func readReady(t *testing.T, addr string) chaosReady {
	t.Helper()
	resp, err := chaosClient.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	defer resp.Body.Close()
	var rd chaosReady
	if err := json.NewDecoder(resp.Body).Decode(&rd); err != nil {
		t.Fatalf("readyz decode: %v", err)
	}
	return rd
}

// sendCode is send for steps whose refusal is the point: it returns
// the HTTP status (0 on transport error) and the raw body.
func sendCode(addr string, step chaosStep) (int, []byte) {
	key := chaosTenantKey
	if step.advance {
		key = chaosAdminKey
	}
	req, err := http.NewRequest("POST", "http://"+addr+step.path, strings.NewReader(step.body))
	if err != nil {
		return 0, nil
	}
	req.Header.Set("X-API-Key", key)
	resp, err := chaosClient.Do(req)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// waitCaughtUp holds the script until the follower has applied every
// record the primary has made durable — the precondition that every
// observed response is already replicated, so a promotion after the
// next kill cannot lose a charge the client saw.
func waitCaughtUp(t *testing.T, primary, follower string) {
	t.Helper()
	want := readReplStatus(t, primary).DurableRecords
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := readReplStatus(t, follower)
		if st.Diverged != "" {
			t.Fatalf("follower diverged: %s", st.Diverged)
		}
		if st.AppliedRecords >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: applied %d, want %d", st.AppliedRecords, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// promote drives POST /v1/admin/promote and decodes the result.
func promote(t *testing.T, addr string) (role string, term uint64) {
	t.Helper()
	req, _ := http.NewRequest("POST", "http://"+addr+"/v1/admin/promote", nil)
	req.Header.Set("X-API-Key", chaosAdminKey)
	resp, err := chaosClient.Do(req)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %s: %s", resp.Status, raw)
	}
	var pr struct {
		Role string `json:"role"`
		Term uint64 `json:"term"`
	}
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatalf("promote decode: %v", err)
	}
	return pr.Role, pr.Term
}

// fenceProbe shows a node a foreign fencing term via the replication
// stream endpoint and returns the response.
func fenceProbe(addr string, term uint64) (int, []byte) {
	req, err := http.NewRequest("GET", "http://"+addr+"/v1/replication/stream?gen=1&offset=0", nil)
	if err != nil {
		return 0, nil
	}
	req.Header.Set("X-API-Key", chaosAdminKey)
	req.Header.Set("X-Eree-Term", fmt.Sprintf("%d", term))
	resp, err := chaosClient.Do(req)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// killNow SIGKILLs the child and reaps it — a machine failure with no
// chance to flush anything not already durable.
func (p *chaosProc) killNow(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

// TestChaosFailover is the two-node crash matrix: a follower mirrors
// the primary while the script runs, the primary SIGKILLs itself at an
// armed crash point, the follower is promoted, and the client retries
// exactly the steps it never observed — against the promoted node. On
// top of the single-node invariants it checks the replication
// contract itself:
//
//   - observed ⊆ replicated: the client moves past a step only after
//     the follower has applied everything the primary made durable, so
//     promotion can never lose a response the client saw;
//   - the promoted world converges: final stats AND the state digest
//     (hex SHA-256 over the canonical accounting state) are
//     byte-for-byte the uninterrupted single-node baseline's;
//   - the deposed primary, restarted and shown the promoted term,
//     fences and refuses writes without spending a thing.
func TestChaosFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness boots real processes; skipped in -short")
	}
	steps := chaosScript()

	// Baseline: the same script against an uninterrupted single node.
	base := t.TempDir()
	baseline := make([][]byte, len(steps))
	var baseStats chaosStats
	var baseDigest string
	{
		proc := startChaos(t, writeChaosConfig(t, base), filepath.Join(base, "state"), "")
		for i, step := range steps {
			ok, body := send(proc.addr, step)
			if !ok {
				t.Fatalf("baseline step %s failed: %s", step.name, body)
			}
			baseline[i] = body
		}
		baseStats = readStats(t, proc.addr)
		baseDigest = readReplStatus(t, proc.addr).StateDigest
		proc.stop(t)
	}
	if baseDigest == "" {
		t.Fatal("baseline reported no state digest")
	}

	// The same crash points as the single-node matrix, now with a live
	// follower to fail over to.
	legs := []struct {
		name  string
		crash string
	}{
		{"before-response", "serve-before-response:3"},
		{"mid-response", "serve-mid-response:2"},
		{"before-sync", "wal-before-sync:4"},
		{"after-sync", "wal-after-sync:5"},
		{"advance-after-record", "advance-after-record:1"},
		{"advance-lost", "wal-before-sync:8"},
	}
	for _, leg := range legs {
		t.Run(leg.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := writeChaosConfig(t, dir)
			primary := startChaos(t, cfg, filepath.Join(dir, "primary"), leg.crash)
			follower := startChaos(t, cfg, filepath.Join(dir, "follower"), "",
				"-replicate-from", "http://"+primary.addr, "-repl-poll", "25ms")

			// The follower advertises its role on /readyz and sheds spend
			// traffic with a hint to the primary.
			if rd := readReady(t, follower.addr); !rd.Ready || rd.Role != "follower" {
				t.Fatalf("follower readyz: %+v", rd)
			}
			if code, body := sendCode(follower.addr, steps[0]); code != http.StatusServiceUnavailable ||
				!strings.Contains(string(body), primary.addr) {
				t.Fatalf("follower write shed: got %d %s, want 503 with a primary hint", code, body)
			}

			observed := make([]bool, len(steps))
			crashBodies := make([][]byte, len(steps))
			var observedEps float64
			for i, step := range steps {
				observed[i], crashBodies[i] = send(primary.addr, step)
				if observed[i] {
					observedEps += step.eps
					waitCaughtUp(t, primary.addr, follower.addr)
				}
			}
			primary.waitKilled(t)

			// Observed-before-crash responses match the baseline.
			for i := range steps {
				if observed[i] && !steps[i].advance && string(crashBodies[i]) != string(baseline[i]) {
					t.Fatalf("step %s observed before crash differs from baseline:\n  crash:    %s\n  baseline: %s",
						steps[i].name, crashBodies[i], baseline[i])
				}
			}

			// Fail over: the follower becomes the primary at a higher term.
			role, term := promote(t, follower.addr)
			if role != "primary" || term < 2 {
				t.Fatalf("promotion: role %q term %d, want primary at term >= 2", role, term)
			}
			if rd := readReady(t, follower.addr); !rd.Ready || rd.Role != "primary" || rd.Term != term {
				t.Fatalf("promoted readyz: %+v", rd)
			}

			// Invariant 1: no observed response without a replicated charge.
			recovered := readStats(t, follower.addr)
			if recovered.SpentEps+1e-9 < observedEps {
				t.Fatalf("promoted spend %g < observed charges %g: a response the client saw was not replicated",
					recovered.SpentEps, observedEps)
			}
			// Invariant 2: never over budget.
			if recovered.SpentEps > chaosBudgetEps+1e-9 {
				t.Fatalf("promoted spend %g exceeds budget %g", recovered.SpentEps, chaosBudgetEps)
			}

			// Replay the unobserved steps against the promoted node.
			for i, step := range steps {
				if observed[i] {
					continue
				}
				if step.advance && readEpoch(t, follower.addr) >= 1 {
					continue
				}
				ok, body := send(follower.addr, step)
				if !ok {
					t.Fatalf("retry of %s on the promoted node failed: %s", step.name, body)
				}
				if !step.advance && string(body) != string(baseline[i]) {
					t.Fatalf("retry of %s differs from baseline:\n  retry:    %s\n  baseline: %s",
						step.name, body, baseline[i])
				}
			}

			// Full convergence: stats and the state digest are the
			// uninterrupted baseline's, byte for byte.
			final := readStats(t, follower.addr)
			if final.SpentEps > chaosBudgetEps+1e-9 {
				t.Fatalf("final spend %g exceeds budget %g", final.SpentEps, chaosBudgetEps)
			}
			if !reflect.DeepEqual(final, baseStats) {
				t.Fatalf("final stats diverge from baseline:\n  final:    %+v\n  baseline: %+v", final, baseStats)
			}
			if d := readReplStatus(t, follower.addr).StateDigest; d != baseDigest {
				t.Fatalf("promoted state digest %s != baseline %s: the failover world forked", d, baseDigest)
			}

			// The deposed primary comes back from its kill, is shown the
			// promoted term, and must fence: no write, no spend.
			exPrimary := startChaos(t, cfg, filepath.Join(dir, "primary"), "")
			before := readStats(t, exPrimary.addr)
			if code, body := fenceProbe(exPrimary.addr, term); code != http.StatusConflict {
				t.Fatalf("fence probe on the deposed primary: got %d %s, want 409", code, body)
			}
			if code, body := sendCode(exPrimary.addr, steps[0]); code != http.StatusServiceUnavailable ||
				!strings.Contains(string(body), "fenced") {
				t.Fatalf("deposed primary served a write: %d %s", code, body)
			}
			if after := readStats(t, exPrimary.addr); !reflect.DeepEqual(after, before) {
				t.Fatalf("fenced node's accounting moved:\n  before: %+v\n  after:  %+v", before, after)
			}
			exPrimary.stop(t)
			follower.stop(t)
		})
	}
}

// TestChaosFencing pins the fence's durability: a primary that
// observes a higher term journals the fence BEFORE the 409 refusal is
// visible, so not even kill -9 at that exact instant can bring it back
// as a writer. Only an operator promotion — a strictly higher term —
// reopens writes.
func TestChaosFencing(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness boots real processes; skipped in -short")
	}
	steps := chaosScript()
	dir := t.TempDir()
	cfg := writeChaosConfig(t, dir)
	stateDir := filepath.Join(dir, "state")
	proc := startChaos(t, cfg, stateDir, "")
	for _, step := range steps[:3] {
		if ok, body := send(proc.addr, step); !ok {
			t.Fatalf("setup step %s failed: %s", step.name, body)
		}
	}
	before := readStats(t, proc.addr)

	// A replication request carrying a higher term deposes this node.
	const foreignTerm = 7
	if code, body := fenceProbe(proc.addr, foreignTerm); code != http.StatusConflict {
		t.Fatalf("fence probe: got %d %s, want 409", code, body)
	}
	if code, body := sendCode(proc.addr, steps[3]); code != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "fenced") {
		t.Fatalf("fenced primary served a write: %d %s", code, body)
	}
	if after := readStats(t, proc.addr); !reflect.DeepEqual(after, before) {
		t.Fatalf("fenced node's accounting moved:\n  before: %+v\n  after:  %+v", before, after)
	}
	if st := readReplStatus(t, proc.addr); !st.Fenced || st.Term != foreignTerm {
		t.Fatalf("status after fencing: %+v, want fenced at term %d", st, foreignTerm)
	}

	// kill -9 immediately: the fence record was durable before the 409
	// left the process, so it must survive.
	proc.killNow(t)
	proc = startChaos(t, cfg, stateDir, "")
	if code, body := sendCode(proc.addr, steps[3]); code != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "fenced") {
		t.Fatalf("fence did not survive kill -9: %d %s", code, body)
	}

	// A graceful cycle too: the fence rides the compacted snapshot.
	proc.stop(t)
	proc = startChaos(t, cfg, stateDir, "")
	if code, body := sendCode(proc.addr, steps[3]); code != http.StatusServiceUnavailable ||
		!strings.Contains(string(body), "fenced") {
		t.Fatalf("fence did not survive a graceful restart: %d %s", code, body)
	}

	// Promotion is the only way back: a strictly higher term, then
	// writes resume and charge normally.
	role, term := promote(t, proc.addr)
	if role != "primary" || term != foreignTerm+1 {
		t.Fatalf("promotion of a fenced primary: role %q term %d, want primary at %d", role, term, foreignTerm+1)
	}
	if ok, body := send(proc.addr, steps[3]); !ok {
		t.Fatalf("writes did not resume after promotion: %s", body)
	}
	if st := readStats(t, proc.addr); st.SpentEps != 2.0 {
		t.Fatalf("spend after resuming: %g, want 2.0 (4 charges of 0.5)", st.SpentEps)
	}
	proc.stop(t)
}
