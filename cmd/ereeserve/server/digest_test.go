package server

import (
	"testing"

	"repro/internal/core"
)

// TestRequestDigest pins the canonical-encoding properties the noise
// derivation depends on: the digest is deterministic, and any change to
// any field a release depends on — kind, attrs, mechanism, parameters,
// cell values — changes it. A collision between two requests a tenant
// can actually issue would let them share base noise under one seq,
// which is exactly the differencing attack the digest exists to stop.
func TestRequestDigest(t *testing.T) {
	base := core.Request{
		Attrs:     []string{"place", "industry"},
		Mechanism: core.MechSmoothGamma,
		Alpha:     0.1,
		Eps:       1,
	}
	digest := func(kind string, req core.Request, values []string) string {
		return requestDigest(kind, []core.Request{req}, values)
	}

	if digest(digestRelease, base, nil) != digest(digestRelease, base, nil) {
		t.Fatal("digest is not deterministic")
	}

	variants := map[string]string{
		"base": digest(digestRelease, base, nil),
		"kind:batch": requestDigest(digestBatch,
			[]core.Request{base}, nil),
		"kind:cell": digest(digestCell, base, []string{"01-A", "44-Retail"}),
	}
	{
		r := base
		r.Attrs = []string{"place", "ownership"}
		variants["attrs"] = digest(digestRelease, r, nil)
	}
	{
		r := base
		r.Mechanism = core.MechLogLaplace
		variants["mechanism"] = digest(digestRelease, r, nil)
	}
	{
		r := base
		r.Alpha = 0.2
		variants["alpha"] = digest(digestRelease, r, nil)
	}
	{
		r := base
		r.Eps = 2
		variants["eps"] = digest(digestRelease, r, nil)
	}
	{
		r := base
		r.Delta = 1e-6
		variants["delta"] = digest(digestRelease, r, nil)
	}
	{
		r := base
		r.Theta = 5
		variants["theta"] = digest(digestRelease, r, nil)
	}
	variants["two requests"] = requestDigest(digestBatch, []core.Request{base, base}, nil)
	variants["values"] = digest(digestCell, base, []string{"01-A", "51-Info"})

	seen := map[string]string{}
	for name, d := range variants {
		if prev, dup := seen[d]; dup {
			t.Errorf("digest collision between %q and %q", name, prev)
		}
		seen[d] = name
	}

	// The encoding is length-prefixed, so shifting bytes between
	// adjacent strings must not collide: ["ab","c"] vs ["a","bc"].
	ab := base
	ab.Attrs = []string{"ab", "c"}
	aBC := base
	aBC.Attrs = []string{"a", "bc"}
	if digest(digestRelease, ab, nil) == digest(digestRelease, aBC, nil) {
		t.Error(`length-prefix collision: attrs ["ab","c"] and ["a","bc"] digest equal`)
	}
}
