package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"

	"repro/internal/core"
)

// Request digests for the noise-stream derivation.
//
// A release's noise stream must be a function of the request *content*,
// not just (tenant, seq): sequence numbers are client-supplied, so a
// tenant could otherwise issue two different requests — the same
// marginal at two different ε, say — under one seq, receive the same
// base noise twice, and difference the responses to cancel the noise
// and recover the true counts, while the accountant charges both
// releases as if their noise were independent. Folding a canonical
// digest of the request into the stream keeps true replays (same
// request, same seq) bit-identical while making any parameter change
// draw fresh noise. The snapshot epoch is folded in separately, inside
// the publisher, where it is pinned race-free (see core's epochStream).
//
// The encoding is collision-free by construction — every field is
// length- or count-prefixed, floats are hashed as their IEEE-754 bit
// patterns — and hashed with SHA-256 so colliding stream identities
// cannot be crafted from structured inputs. (Stream identities are
// 64-bit, so a ~2³² offline birthday search is the hard floor for any
// derivation; the digest removes every cheaper path.)

// digestKind tags which endpoint shape a digest covers, so a /v1/cell
// request can never alias a /v1/release request over the same fields.
const (
	digestRelease = "release"
	digestBatch   = "batch"
	digestCell    = "cell"
)

// requestDigest canonically fingerprints a request body: the endpoint
// kind, every request's attrs, mechanism and parameters, and (for cell
// releases) the cell values.
func requestDigest(kind string, reqs []core.Request, values []string) string {
	h := sha256.New()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeU64(uint64(len(s)))
		h.Write([]byte(s))
	}
	writeStr(kind)
	writeU64(uint64(len(reqs)))
	for _, r := range reqs {
		writeU64(uint64(len(r.Attrs)))
		for _, a := range r.Attrs {
			writeStr(a)
		}
		writeStr(r.Mechanism.String())
		writeU64(math.Float64bits(r.Alpha))
		writeU64(math.Float64bits(r.Eps))
		writeU64(math.Float64bits(r.Delta))
		writeU64(uint64(int64(r.Theta)))
	}
	writeU64(uint64(len(values)))
	for _, v := range values {
		writeStr(v)
	}
	return hex.EncodeToString(h.Sum(nil))
}
