// Package server implements the ereeserve HTTP/JSON front-end over the
// publisher: a multi-tenant networked release service.
//
// One Server wraps one core.Publisher (one versioned dataset, one
// shared truth cache — truth is free in privacy terms, so tenants share
// it) and a privacy.Registry mapping API keys to tenants, each with its
// own budget accountant. Endpoints:
//
//	POST /v1/release        one marginal release
//	POST /v1/batch          many releases, atomically accounted, with
//	                        fail-fast admission control (429 + remaining
//	                        budget before any scan or noise is paid for)
//	POST /v1/cell           one cell of a marginal
//	GET  /v1/stats          the calling tenant's budget + cache/epoch stats
//	POST /v1/admin/advance  absorb quarterly deltas under live load (admin key)
//	GET  /healthz           liveness + current epoch (no auth)
//
// # Determinism contract over the wire
//
// A release's noise stream is
//
//	Split("tenant:"+name).SplitIndex("req", seq).Split("body:"+digest)
//
// of the server's root noise stream, further split by the pinned
// snapshot epoch inside the publisher (core's epochStream). seq is
// either supplied by the client or assigned from the tenant's own
// counter; digest is the SHA-256 of the request's canonical encoding
// (see digest.go). Responses are rendered with a fixed field order and
// Go's deterministic float formatting, so the same (noise seed,
// dataset, tenant, seq, request, epoch) yields bit-identical response
// bytes — across runs, across concurrent load, across the race
// detector. Changing any coordinate — a different request under the
// same seq, the same request on a later epoch — draws independent
// noise, so no pair of distinct releases can be differenced to cancel
// the noise. What other tenants do, and how requests interleave, never
// shows in a tenant's bytes; only the dataset epoch a request lands on
// is scheduling-dependent (and is reported in the response).
package server

import (
	"net/http"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
)

// Server is the multi-tenant release service. Create with New, expose
// via Handler.
type Server struct {
	pub *core.Publisher
	reg *privacy.Registry
	// noise is the root noise stream identity. Only pure derivations
	// (Split/SplitIndex) are ever called on it, which read the immutable
	// identity and never advance state, so concurrent use is safe.
	noise    *dist.Stream
	adminKey string
	deltaCfg lodes.DeltaConfig
	// deltaSeed roots admin-advance delta generation.
	deltaSeed int64
	// advMu serializes admin advances: each generated delta must be
	// based on the snapshot the previous one produced.
	advMu sync.Mutex
	// quartersAbsorbed numbers generated deltas across advance calls
	// (quarter q draws from deltaSeed+q), so an advance sequence is
	// reproducible regardless of how it is split into calls.
	quartersAbsorbed int
	// seqs assigns per-tenant sequence numbers to requests that do not
	// carry one: map[string]*atomic.Int64 keyed by tenant name.
	seqs sync.Map
}

// Options configure a Server beyond its publisher and tenants.
type Options struct {
	// NoiseSeed roots every noise stream the server draws from.
	NoiseSeed int64
	// AdminKey authorizes /v1/admin endpoints; empty disables them.
	AdminKey string
	// DeltaSeed roots admin-advance delta generation (quarter q of the
	// server's lifetime draws from DeltaSeed+q).
	DeltaSeed int64
	// DeltaConfig parameterizes generated quarterly deltas; zero value
	// means lodes.DefaultDeltaConfig().
	DeltaConfig *lodes.DeltaConfig
}

// New creates a server over the publisher and tenant registry.
func New(pub *core.Publisher, reg *privacy.Registry, opts Options) *Server {
	cfg := lodes.DefaultDeltaConfig()
	if opts.DeltaConfig != nil {
		cfg = *opts.DeltaConfig
	}
	return &Server{
		pub:       pub,
		reg:       reg,
		noise:     dist.NewStreamFromSeed(opts.NoiseSeed),
		adminKey:  opts.AdminKey,
		deltaCfg:  cfg,
		deltaSeed: opts.DeltaSeed,
	}
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /v1/release", s.withTenant(s.handleRelease))
	mux.HandleFunc("POST /v1/batch", s.withTenant(s.handleBatch))
	mux.HandleFunc("POST /v1/cell", s.withTenant(s.handleCell))
	mux.HandleFunc("GET /v1/stats", s.withTenant(s.handleStats))
	mux.HandleFunc("POST /v1/admin/advance", s.withAdmin(s.handleAdvance))
	return http.MaxBytesHandler(mux, maxBodyBytes)
}

// tenantStream derives the root stream of one tenant's noise. Labeling
// by name (not key) means rotating a tenant's API key never changes its
// released values.
func (s *Server) tenantStream(name string) *dist.Stream {
	return s.noise.Split("tenant:" + name)
}

// requestStream derives the noise stream one request draws from: the
// tenant's root stream, split by sequence number, split by the
// request-content digest — the wire half of the determinism contract
// (the publisher folds in the pinned epoch). Deriving from the digest
// means a client reusing an explicit seq for a *different* request gets
// independent noise, while a true replay reproduces every byte.
func (s *Server) requestStream(tenant string, seq int64, digest string) *dist.Stream {
	return s.tenantStream(tenant).SplitIndex("req", int(seq)).Split("body:" + digest)
}

// nextSeq assigns the tenant's next request sequence number.
func (s *Server) nextSeq(name string) int64 {
	v, ok := s.seqs.Load(name)
	if !ok {
		v, _ = s.seqs.LoadOrStore(name, new(atomic.Int64))
	}
	return v.(*atomic.Int64).Add(1) - 1
}

// resolveSeq picks the request's sequence number: the client's explicit
// one if present (validated by the decoder), else the tenant's counter.
func (s *Server) resolveSeq(name string, explicit *int64) int64 {
	if explicit != nil {
		return *explicit
	}
	return s.nextSeq(name)
}
