// Package server implements the ereeserve HTTP/JSON front-end over the
// publisher: a multi-tenant networked release service.
//
// One Server wraps one core.Publisher (one versioned dataset, one
// shared truth cache — truth is free in privacy terms, so tenants share
// it) and a privacy.Registry mapping API keys to tenants, each with its
// own budget accountant. Endpoints:
//
//	POST /v1/release        one marginal release
//	POST /v1/batch          many releases, atomically accounted, with
//	                        fail-fast admission control (429 + remaining
//	                        budget before any scan or noise is paid for)
//	POST /v1/cell           one cell of a marginal
//	GET  /v1/stats          the calling tenant's budget + cache/epoch stats
//	POST /v1/admin/advance  absorb quarterly deltas under live load (admin key)
//	POST /v1/admin/promote  bump the fencing term and take the primary role (admin key)
//	GET  /v1/replication/*  snapshot / stream / status for followers (admin key)
//	GET  /healthz           liveness + current epoch (no auth)
//	GET  /readyz            readiness + role, term, replication lag (no auth)
//
// A durable server is either the primary (owns mutation, serves the
// replication endpoints) or a follower (-replicate-from: mirrors the
// primary's WAL through the recovery apply path, serves reads, sheds
// writes with a hint to the primary, and can be promoted). See
// replication.go and follower.go.
//
// # Determinism contract over the wire
//
// A release's noise stream is
//
//	Split("tenant:"+name).SplitIndex("req", seq).Split("body:"+digest)
//
// of the server's root noise stream, further split by the pinned
// snapshot epoch inside the publisher (core's epochStream). seq is
// either supplied by the client or assigned from the tenant's own
// counter; digest is the SHA-256 of the request's canonical encoding
// (see digest.go). Responses are rendered with a fixed field order and
// Go's deterministic float formatting, so the same (noise seed,
// dataset, tenant, seq, request, epoch) yields bit-identical response
// bytes — across runs, across concurrent load, across the race
// detector. Changing any coordinate — a different request under the
// same seq, the same request on a later epoch — draws independent
// noise, so no pair of distinct releases can be differenced to cancel
// the noise. What other tenants do, and how requests interleave, never
// shows in a tenant's bytes; only the dataset epoch a request lands on
// is scheduling-dependent (and is reported in the response).
package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/crashpoint"
	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
)

// Lifecycle states (Server.state). Requests to the /v1 endpoints are
// only served in stateReady; /healthz and /readyz always answer.
const (
	stateStarting int32 = iota
	stateReady
	stateDraining
	// stateDiverged is terminal: a follower whose mirror provably forked
	// from its primary stops serving rather than answer from bad state.
	stateDiverged
)

// Server is the multi-tenant release service. Create with New (in
// memory) or Open (durable accounting under a state directory), expose
// via Handler or serve on a socket via Start.
type Server struct {
	pub *core.Publisher
	reg *privacy.Registry
	// noise is the root noise stream identity. Only pure derivations
	// (Split/SplitIndex) are ever called on it, which read the immutable
	// identity and never advance state, so concurrent use is safe.
	noise    *dist.Stream
	adminKey string
	deltaCfg lodes.DeltaConfig
	// deltaSeed roots admin-advance delta generation.
	deltaSeed int64
	// advMu serializes admin advances: each generated delta must be
	// based on the snapshot the previous one produced.
	advMu sync.Mutex
	// quartersAbsorbed numbers generated deltas across advance calls
	// (quarter q draws from deltaSeed+q), so an advance sequence is
	// reproducible regardless of how it is split into calls.
	quartersAbsorbed int
	// quarterSeeds records each absorbed quarter's generation seed, in
	// order — the durable form of the dataset lineage (guarded by advMu).
	quarterSeeds []int64
	// seqs assigns per-tenant sequence numbers to requests that do not
	// carry one: map[string]*atomic.Int64 keyed by tenant name.
	seqs sync.Map

	// persist is the write-ahead accounting store; nil for in-memory
	// servers (New), set by Open.
	persist *Persistence
	// replay remembers recently charged request identities so a client
	// retry of a durable charge is re-served without charging again.
	replay *replayCache
	// extraTenants carries recovered accounting for tenants absent from
	// the current configuration: their spend history must survive into
	// future snapshots even while no key maps to them.
	extraTenants map[string]*tenantState

	// state is the lifecycle gate (starting → ready → draining).
	state atomic.Int32
	// inflight counts requests inside the /v1 endpoints, for load
	// shedding; maxInFlight bounds it.
	inflight    atomic.Int64
	maxInFlight int
	// reqTimeout, when positive, bounds each release endpoint's handler
	// time via http.TimeoutHandler (set by Start's RunOptions).
	reqTimeout time.Duration

	// role is rolePrimary or roleFollower; term is the node's fencing
	// term and fenced marks a deposed primary (it observed a higher
	// foreign term and refuses writes until promoted). See replication.go.
	role   atomic.Int32
	term   atomic.Uint64
	fenced atomic.Bool
	// fenceMu serializes term transitions (observing a foreign term,
	// promotion) so exactly one fence/term record is journaled per
	// transition.
	fenceMu sync.Mutex
	// repl holds the follower's streaming state; nil on primaries.
	repl *replState
	// replayWindow and digestEvery are the configured replication/
	// durability cadences (defaults applied in newServer).
	replayWindow int
	digestEvery  int
}

// Roles (Server.role).
const (
	rolePrimary int32 = iota
	roleFollower
)

func (s *Server) roleName() string {
	if s.role.Load() == roleFollower {
		return "follower"
	}
	return "primary"
}

// Options configure a Server beyond its publisher and tenants.
type Options struct {
	// NoiseSeed roots every noise stream the server draws from.
	NoiseSeed int64
	// AdminKey authorizes /v1/admin endpoints; empty disables them.
	AdminKey string
	// DeltaSeed roots admin-advance delta generation (quarter q of the
	// server's lifetime draws from DeltaSeed+q).
	DeltaSeed int64
	// DeltaConfig parameterizes generated quarterly deltas; zero value
	// means lodes.DefaultDeltaConfig().
	DeltaConfig *lodes.DeltaConfig
	// StateDir, when non-empty, enables durable accounting: Open
	// recovers from it and journals every charge to it. Ignored by New.
	StateDir string
	// MaxInFlight bounds concurrently served /v1 requests; excess is
	// shed with 503 + Retry-After. 0 means the default (256), negative
	// disables shedding.
	MaxInFlight int
	// ReplicateFrom, when non-empty, boots the server as a follower
	// mirroring the primary at this base URL (requires StateDir and
	// AdminKey — the replication endpoints authenticate with the shared
	// admin key). The follower serves reads, sheds writes with a hint
	// to the primary, and becomes the primary on /v1/admin/promote.
	ReplicateFrom string
	// ReplayWindow bounds the per-tenant durable replay-dedup ring; 0
	// means the default (4096). Primary and followers must agree — the
	// ring is covered by the divergence digests.
	ReplayWindow int
	// DigestEvery is how many journaled records elapse between state
	// digest records; 0 means the default (8).
	DigestEvery int
	// ReplPoll is the follower's delay between stream polls when the
	// primary is unreachable or idle; 0 means the default (250ms).
	// Tests shorten it.
	ReplPoll time.Duration
}

const defaultMaxInFlight = 256

const defaultReplPoll = 250 * time.Millisecond

// newServer builds the server in stateStarting; callers mark it ready.
func newServer(pub *core.Publisher, reg *privacy.Registry, opts Options) *Server {
	cfg := lodes.DefaultDeltaConfig()
	if opts.DeltaConfig != nil {
		cfg = *opts.DeltaConfig
	}
	maxInFlight := opts.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = defaultMaxInFlight
	}
	s := &Server{
		pub:          pub,
		reg:          reg,
		noise:        dist.NewStreamFromSeed(opts.NoiseSeed),
		adminKey:     opts.AdminKey,
		deltaCfg:     cfg,
		deltaSeed:    opts.DeltaSeed,
		replay:       newReplayCache(opts.ReplayWindow),
		maxInFlight:  maxInFlight,
		replayWindow: opts.ReplayWindow,
		digestEvery:  opts.DigestEvery,
	}
	// Every node starts at term 1 until recovery or a stream says
	// otherwise; an in-memory server keeps it.
	s.term.Store(1)
	return s
}

// New creates an in-memory server over the publisher and tenant
// registry: no durability, immediately ready. Budgets reset on
// restart — the serving shape for tests and embedded use; production
// serving goes through Open.
func New(pub *core.Publisher, reg *privacy.Registry, opts Options) *Server {
	s := newServer(pub, reg, opts)
	s.state.Store(stateReady)
	return s
}

// Open creates a server with durable accounting under
// opts.StateDir: it recovers the write-ahead state (spend totals,
// per-epoch ledgers, dataset lineage, sequence counters, replay
// identities), restores every configured tenant's accountant
// bit-identically, replays the dataset lineage by regenerating each
// recorded quarter's delta from its recorded seed, attaches the
// journal so every future charge is durable before its response, and
// compacts the log into a fresh snapshot. The server is ready when
// Open returns. With an empty StateDir it degenerates to New.
//
// The publisher must be at the dataset lineage's epoch 0 (the same
// built-from-config dataset every boot); recovery re-derives later
// epochs. A recovered tenant whose configured definition or α changed
// is a boot error — spend history under one privacy definition cannot
// be reinterpreted under another. Changed budgets are honored (the
// history is kept; an accountant restored over budget refuses further
// charges). Recovered tenants absent from the configuration are
// carried forward untouched.
func Open(pub *core.Publisher, reg *privacy.Registry, opts Options) (*Server, error) {
	s := newServer(pub, reg, opts)
	if opts.StateDir == "" {
		if opts.ReplicateFrom != "" {
			return nil, fmt.Errorf("server: follower mode requires a state directory")
		}
		s.state.Store(stateReady)
		return s, nil
	}
	if opts.ReplicateFrom != "" {
		return openFollower(s, opts)
	}
	pers, st, err := openState(opts.StateDir, opts.ReplayWindow)
	if err != nil {
		return nil, err
	}
	if err := s.adopt(pers, st); err != nil {
		pers.store.Close()
		return nil, err
	}
	s.state.Store(stateReady)
	return s, nil
}

// adopt takes ownership of a recovered (or mirrored) persistent
// state: replay the dataset lineage the publisher has not yet
// absorbed, restore every configured tenant's accountant
// bit-identically, reconcile ledgers to the publisher's epoch, attach
// the journal, establish the fencing term, and compact into a fresh
// snapshot (which also attaches the digest shadow). Boot recovery and
// follower promotion are the same operation — a node assuming the
// primary role over a state it trusts.
func (s *Server) adopt(pers *Persistence, st *persistentState) error {
	// Replay the dataset lineage: regenerate each not-yet-absorbed
	// quarter's delta from its seed and advance. Generation and Advance
	// are deterministic, so the publisher lands on the exact snapshot
	// chain the recorded history served. (At boot the publisher is at
	// epoch 0 and replays everything; at promotion the follower already
	// advanced through the stream and this is a no-op.)
	for q := s.pub.Epoch(); q < len(st.QuarterSeeds); q++ {
		dl, err := lodes.GenerateDelta(s.pub.Dataset(), s.deltaCfg, dist.NewStreamFromSeed(st.QuarterSeeds[q]))
		if err != nil {
			return fmt.Errorf("server: recovery quarter %d: %w", q, err)
		}
		if err := s.pub.Advance(dl); err != nil {
			return fmt.Errorf("server: recovery quarter %d: %w", q, err)
		}
	}
	s.advMu.Lock()
	s.quartersAbsorbed = len(st.QuarterSeeds)
	s.quarterSeeds = append([]int64(nil), st.QuarterSeeds...)
	s.advMu.Unlock()

	// Restore every recovered tenant onto its configured accountant.
	for name, ts := range st.Tenants {
		t, ok := s.reg.Tenant(name)
		if !ok {
			if s.extraTenants == nil {
				s.extraTenants = make(map[string]*tenantState)
			}
			s.extraTenants[name] = ts
			continue
		}
		def, alpha := t.Acct.Def()
		if def != ts.Def || alpha != ts.Alpha {
			return fmt.Errorf("server: tenant %q recovered under %v(alpha=%g) but configured as %v(alpha=%g): spend history cannot change privacy definition",
				name, ts.Def, ts.Alpha, def, alpha)
		}
		if err := t.Acct.Restore(ts.SpentEps, ts.SpentDelta, ts.Releases, ts.Ledger); err != nil {
			return fmt.Errorf("server: tenant %q: %w", name, err)
		}
		ctr := new(atomic.Int64)
		ctr.Store(ts.NextSeq)
		s.seqs.Store(name, ctr)
		s.replay.seed(name, ts.Recent)
	}

	// Reconcile: a crash can land between the dataset advance record
	// and some tenants' ledger advances. Fast-forward every ledger to
	// the publisher's epoch (not journaled — recovery re-derives this
	// from the lineage), so an advance is atomic-on-recovery: it either
	// completed for all tenants or completes now.
	for _, t := range s.reg.Tenants() {
		for t.Acct.Epoch() < s.pub.Epoch() {
			t.Acct.AdvanceEpoch()
		}
	}

	// From here every charge is write-ahead: registration records for
	// the full registry land first, then the journal is live.
	if err := s.reg.AttachJournal(pers); err != nil {
		return fmt.Errorf("server: attaching journal: %w", err)
	}
	s.persist = pers

	// Establish the fencing term. A fresh history starts at term 1 and
	// journals it; a recovered one keeps its recorded term — including
	// the fenced flag, so a deposed primary stays deposed across
	// restarts until an operator promotes it.
	s.fenced.Store(st.Fenced)
	term := st.Term
	if term == 0 {
		term = 1
		if err := pers.LogTerm(term); err != nil {
			return fmt.Errorf("server: establishing term: %w", err)
		}
		st.Term = term
	}
	s.term.Store(term)

	// Fold everything into a fresh snapshot so the replayed log is
	// compacted away and the next boot starts from this state. Always
	// the primary form: adopt is the act of assuming the primary role.
	if err := s.compactPrimary(); err != nil {
		return fmt.Errorf("server: boot compaction: %w", err)
	}
	return nil
}

// snapshotState assembles the full persistent state from the live
// server: the dataset lineage, every registered tenant's accounting
// (bit-exact copies of the accountant's floats), sequence counters,
// replay identities, and any carried-forward unconfigured tenants.
func (s *Server) snapshotState() *persistentState {
	st := newPersistentState()
	st.window = s.replayWindow
	st.Term = s.term.Load()
	st.Fenced = s.fenced.Load()
	s.advMu.Lock()
	st.QuarterSeeds = append([]int64(nil), s.quarterSeeds...)
	s.advMu.Unlock()
	for name, ts := range s.extraTenants {
		st.Tenants[name] = ts
	}
	for _, t := range s.reg.Tenants() {
		def, alpha := t.Acct.Def()
		beps, bdelta := t.Acct.Budget()
		spent := t.Acct.Spent()
		var nextSeq int64
		if v, ok := s.seqs.Load(t.Name); ok {
			nextSeq = v.(*atomic.Int64).Load()
		}
		st.Tenants[t.Name] = &tenantState{
			Def: def, Alpha: alpha,
			BudgetEps: beps, BudgetDelta: bdelta,
			SpentEps: spent.Eps, SpentDelta: spent.Delta,
			Releases: t.Acct.Releases(),
			Ledger:   t.Acct.SpendByEpoch(),
			NextSeq:  nextSeq,
			Recent:   s.replay.snapshot(t.Name),
		}
	}
	return st
}

// Compact folds the current state into a fresh snapshot and rotates
// the log, then re-roots the digest shadow on the exact bytes written
// — every digest chain is anchored at a snapshot both a recovering
// process and a bootstrapping follower decode identically. No-op
// without persistence. Like wal.Store.Snapshot, this is a
// quiescent-point operation (boot, drain, promote).
func (s *Server) Compact() error {
	if s.persist == nil {
		return nil
	}
	if s.role.Load() == roleFollower {
		// The follower's mirror is itself the log-ordered state; no
		// digest shadow to re-root (followers verify shipped digests,
		// they never emit their own).
		return s.persist.store.Snapshot(s.repl.encodeState())
	}
	return s.compactPrimary()
}

func (s *Server) compactPrimary() error {
	b := encodeSnapshot(s.snapshotState())
	if err := s.persist.store.Snapshot(b); err != nil {
		return err
	}
	shadow, err := decodeSnapshot(b)
	if err != nil {
		return fmt.Errorf("server: compaction round-trip: %w", err)
	}
	shadow.window = s.replayWindow
	s.persist.setShadow(shadow, s.digestEvery)
	return nil
}

// closePersistent compacts and closes the accounting store; the
// shutdown path calls it after the drain, when no request can be
// mid-charge.
func (s *Server) closePersistent() error {
	if s.persist == nil {
		return nil
	}
	err := s.Compact()
	if cerr := s.persist.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// beginDrain moves the server to draining: /readyz turns not-ready and
// the /v1 endpoints refuse new requests while in-flight ones finish.
func (s *Server) beginDrain() {
	s.state.Store(stateDraining)
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.Handle("POST /v1/release", s.withTimeout(s.shed(s.writable(s.withTenant(s.handleRelease)))))
	mux.Handle("POST /v1/batch", s.withTimeout(s.shed(s.writable(s.withTenant(s.handleBatch)))))
	mux.Handle("POST /v1/cell", s.withTimeout(s.shed(s.writable(s.withTenant(s.handleCell)))))
	mux.Handle("GET /v1/stats", s.withTimeout(s.shed(s.withTenant(s.handleStats))))
	// The admin advance is deliberately outside withTimeout: absorbing
	// several quarters legitimately outlives a per-request deadline,
	// and aborting it mid-sweep would buy nothing (each quarter is
	// journaled before it applies). It still sheds and drains.
	mux.HandleFunc("POST /v1/admin/advance", s.shed(s.writable(s.withAdmin(s.handleAdvance))))
	// Promotion and the replication surface sit outside shed: a
	// follower must be promotable before it is "ready", and a draining
	// primary should keep shipping its log so followers catch up.
	mux.HandleFunc("POST /v1/admin/promote", s.withAdmin(s.handlePromote))
	mux.HandleFunc("GET /v1/replication/snapshot", s.withAdmin(s.handleReplSnapshot))
	mux.HandleFunc("GET /v1/replication/stream", s.withAdmin(s.handleReplStream))
	mux.HandleFunc("GET /v1/replication/status", s.withAdmin(s.handleReplStatus))
	return http.MaxBytesHandler(mux, maxBodyBytes)
}

// writable refuses mutation on nodes that must not spend: a follower
// sheds spend traffic with a hint to the primary, and a fenced
// ex-primary refuses writes outright — the split-brain guarantee that
// a deposed node can never double-spend a tenant's budget.
func (s *Server) writable(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.fenced.Load() {
			writeJSON(w, http.StatusServiceUnavailable, errorBody{
				Error: fmt.Sprintf("fenced: this node was deposed at term %d and refuses writes; promote it to resume", s.term.Load()),
			})
			return
		}
		if s.role.Load() == roleFollower {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{
				Error:   "read-only follower: spend traffic belongs on the primary",
				Primary: s.repl.upstream,
			})
			return
		}
		h(w, r)
	}
}

// shed gates a /v1 endpoint on lifecycle state and the in-flight
// bound: not-ready (starting or draining) and over-capacity requests
// get 503 + Retry-After instead of degrading everyone's latency.
func (s *Server) shed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		switch s.state.Load() {
		case stateStarting:
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "service is starting"})
			return
		case stateDraining:
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "service is draining"})
			return
		case stateDiverged:
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "replica has diverged from its primary and refuses to serve"})
			return
		}
		n := s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if s.maxInFlight > 0 && n > int64(s.maxInFlight) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "service is overloaded"})
			return
		}
		h(w, r)
	}
}

// withTimeout bounds a handler's total time when a per-request
// deadline is configured (Start's RunOptions); zero means unbounded.
// With the mid-response crash point armed the wrapper is skipped:
// http.TimeoutHandler buffers the whole response, which would turn a
// mid-body kill into a no-bytes kill and blind the chaos harness to
// exactly the torn-response case it exists to test.
func (s *Server) withTimeout(h http.Handler) http.Handler {
	if s.reqTimeout <= 0 || crashpoint.Armed(crashMidResponse) {
		return h
	}
	return http.TimeoutHandler(h, s.reqTimeout, `{"error":"request deadline exceeded"}`+"\n")
}

// tenantStream derives the root stream of one tenant's noise. Labeling
// by name (not key) means rotating a tenant's API key never changes its
// released values.
func (s *Server) tenantStream(name string) *dist.Stream {
	return s.noise.Split("tenant:" + name)
}

// requestStream derives the noise stream one request draws from: the
// tenant's root stream, split by sequence number, split by the
// request-content digest — the wire half of the determinism contract
// (the publisher folds in the pinned epoch). Deriving from the digest
// means a client reusing an explicit seq for a *different* request gets
// independent noise, while a true replay reproduces every byte.
func (s *Server) requestStream(tenant string, seq int64, digest string) *dist.Stream {
	return s.tenantStream(tenant).SplitIndex("req", int(seq)).Split("body:" + digest)
}

// nextSeq assigns the tenant's next request sequence number.
func (s *Server) nextSeq(name string) int64 {
	v, ok := s.seqs.Load(name)
	if !ok {
		v, _ = s.seqs.LoadOrStore(name, new(atomic.Int64))
	}
	return v.(*atomic.Int64).Add(1) - 1
}

// resolveSeq picks the request's sequence number: the client's explicit
// one if present (validated by the decoder), else the tenant's counter.
func (s *Server) resolveSeq(name string, explicit *int64) int64 {
	if explicit != nil {
		return *explicit
	}
	return s.nextSeq(name)
}
