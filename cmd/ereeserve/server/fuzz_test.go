package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
)

// fuzzServer is built once per fuzz worker process: a tiny dataset is
// plenty to drive the decode and validation paths, and keeps the
// corpus throughput high.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzTen  *privacy.Tenant
)

func fuzzSetup() {
	cfg := lodes.TestConfig()
	cfg.NumEstablishments = 60
	data := lodes.MustGenerate(cfg, dist.NewStreamFromSeed(1))
	acct, err := privacy.NewAccountant(privacy.WeakEREE, 0.1, 1e9, 0.999)
	if err != nil {
		panic(err)
	}
	reg := privacy.NewRegistry()
	if fuzzTen, err = reg.Register("fuzz", "fuzz-key", acct); err != nil {
		panic(err)
	}
	fuzzSrv = New(core.NewPublisher(data), reg, Options{NoiseSeed: 7})
}

// FuzzRequestDecoding throws arbitrary bytes at the three
// budget-spending endpoints. The contract under fuzz: the server never
// panics (the fuzzer fails the run on any panic), never reports a 5xx,
// and — the privacy-critical half — a request that is not answered 200
// does not move the tenant's budget by one bit.
func FuzzRequestDecoding(f *testing.F) {
	f.Add("/v1/release", `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}`)
	f.Add("/v1/release", `{"attrs":[1,2,3],"mechanism":true}`)
	f.Add("/v1/release", `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":-7}`)
	f.Add("/v1/release", `{"attrs":["`+strings.Repeat("a", 4096)+`"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}`)
	f.Add("/v1/release", `{"attrs":["sex"],"mechanism":"log-laplace","alpha":1e308,"eps":1e308,"seq":2147483647}`)
	f.Add("/v1/release", `nonsense`)
	f.Add("/v1/release", `{}{}`)
	f.Add("/v1/batch", `{"requests":[{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}]}`)
	f.Add("/v1/batch", `{"requests":[`+strings.Repeat(`{"attrs":["x"]},`, 200)+`{"attrs":["x"]}]}`)
	f.Add("/v1/batch", `{"requests":null,"seq":-9223372036854775808}`)
	f.Add("/v1/cell", `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"values":["44-Retail"]}`)
	f.Add("/v1/cell", `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"values":["\u0000"]}`)
	f.Add("/v1/admin/advance", `{"quarters":1000000}`)

	f.Fuzz(func(t *testing.T, path string, body string) {
		fuzzOnce.Do(fuzzSetup)
		switch path {
		case "/v1/release", "/v1/batch", "/v1/cell", "/v1/admin/advance":
		default:
			// Mutated paths exercise the mux, which is not under test.
			path = "/v1/release"
		}
		before := fuzzTen.Acct.Spent()
		req := httptest.NewRequest("POST", path, strings.NewReader(body))
		req.Header.Set(apiKeyHeader, "fuzz-key")
		rec := httptest.NewRecorder()
		fuzzSrv.Handler().ServeHTTP(rec, req)
		status := rec.Code
		if status >= 500 {
			t.Fatalf("POST %s with %q = %d: %s", path, body, status, rec.Body.Bytes())
		}
		if status != http.StatusOK {
			after := fuzzTen.Acct.Spent()
			if after != before {
				t.Fatalf("POST %s with %q = %d but spent budget: %+v -> %+v",
					path, body, status, before, after)
			}
		}
	})
}
