package server

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/crashpoint"
	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"

	"repro/cmd/ereeserve/config"
)

// apiKeyHeader carries the tenant (or admin) credential.
const apiKeyHeader = "X-API-Key"

// errorBody is every error response's shape. RemainingEps/Delta are
// only present on budget rejections (429), so an admitted-but-degraded
// client can see exactly what it has left without a second call.
type errorBody struct {
	Error          string   `json:"error"`
	RemainingEps   *float64 `json:"remaining_eps,omitempty"`
	RemainingDelta *float64 `json:"remaining_delta,omitempty"`
	// Primary is a follower's redirect hint on shed spend traffic: the
	// base URL writes belong on.
	Primary string `json:"primary,omitempty"`
}

// statusFor maps a release error to its HTTP status via the typed
// sentinels — the entire reason internal/core and internal/privacy
// export them.
func statusFor(err error) int {
	switch {
	case errors.Is(err, privacy.ErrBudgetExhausted):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrUnknownMarginal), errors.Is(err, core.ErrUnknownCell):
		return http.StatusNotFound
	case errors.Is(err, core.ErrInvalidRequest), errors.Is(err, privacy.ErrIncompatibleLoss),
		errors.Is(err, privacy.ErrInvalidLoss), errors.Is(err, errBadBody):
		return http.StatusBadRequest
	case errors.Is(err, errBodyTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, privacy.ErrPersistence):
		// The accounting store cannot make the charge durable; the
		// charge was refused, the request is retryable elsewhere/later.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON renders a response body. Struct field order is fixed and
// Go's float formatting is deterministic, so identical values are
// identical bytes — the wire half of the determinism contract.
func writeJSON(w http.ResponseWriter, status int, body any) {
	raw, err := json.Marshal(body)
	if err != nil {
		// Unreachable for our response types; keep the failure visible.
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(raw, '\n'))
}

// writeError renders an error response, attaching the tenant's
// remaining budget on budget rejections.
func writeError(w http.ResponseWriter, err error, acct *privacy.Accountant) {
	status := statusFor(err)
	body := errorBody{Error: err.Error()}
	if status == http.StatusTooManyRequests && acct != nil {
		eps, delta := acct.Remaining()
		body.RemainingEps = &eps
		body.RemainingDelta = &delta
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, body)
}

// writeRelease renders a charged success response. It hosts the two
// response-side crash points the chaos harness kills at: before any
// byte leaves (charge durable, response lost — the client must be able
// to re-fetch it as a replay) and mid-body (a torn response must never
// be mistaken for a fresh charge on retry).
func writeRelease(w http.ResponseWriter, body any) {
	crashpoint.Maybe(crashBeforeResponse)
	raw, err := json.Marshal(body)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	raw = append(raw, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if crashpoint.Armed(crashMidResponse) && len(raw) > 1 {
		half := len(raw) / 2
		w.Write(raw[:half])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		crashpoint.Maybe(crashMidResponse)
		w.Write(raw[half:])
		return
	}
	w.Write(raw)
}

// withTenant authenticates the request's API key and hands the handler
// its tenant. Keys are matched by SHA-256 digest (privacy.Registry), so
// lookup time does not depend on how much of a candidate key agrees
// with a registered one; an unknown key gets the same opaque 401 as a
// missing one.
func (s *Server) withTenant(h func(http.ResponseWriter, *http.Request, *privacy.Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, ok := s.reg.Lookup(r.Header.Get(apiKeyHeader))
		if !ok {
			writeJSON(w, http.StatusUnauthorized, errorBody{Error: "unknown API key"})
			return
		}
		h(w, r, t)
	}
}

// withAdmin authenticates the admin key.
func (s *Server) withAdmin(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get(apiKeyHeader)
		if s.adminKey == "" || subtle.ConstantTimeCompare([]byte(key), []byte(s.adminKey)) != 1 {
			writeJSON(w, http.StatusUnauthorized, errorBody{Error: "admin endpoint requires the admin key"})
			return
		}
		h(w, r)
	}
}

// lossJSON is a privacy loss on the wire.
type lossJSON struct {
	Definition string  `json:"definition"`
	Alpha      float64 `json:"alpha"`
	Eps        float64 `json:"eps"`
	Delta      float64 `json:"delta"`
}

func lossToJSON(l privacy.Loss) lossJSON {
	return lossJSON{
		Definition: config.DefinitionToken(l.Def),
		Alpha:      l.Alpha,
		Eps:        l.Eps,
		Delta:      l.Delta,
	}
}

// releaseJSON is one marginal release on the wire. The confidential
// truth is deliberately absent: this is the production boundary, and
// the privacy guarantee covers exactly what crosses it.
type releaseJSON struct {
	Epoch     int       `json:"epoch"`
	Seq       int64     `json:"seq"`
	Attrs     []string  `json:"attrs"`
	Mechanism string    `json:"mechanism"`
	Loss      lossJSON  `json:"loss"`
	Cells     int       `json:"cells"`
	Counts    []float64 `json:"counts"`
}

func releaseToJSON(rel *core.Release, seq int64, attrs []string) releaseJSON {
	return releaseJSON{
		Epoch:     rel.Epoch,
		Seq:       seq,
		Attrs:     attrs,
		Mechanism: rel.MechanismName,
		Loss:      lossToJSON(rel.Loss),
		Cells:     len(rel.Noisy),
		Counts:    rel.Noisy,
	}
}

// handleHealth is the unauthenticated liveness probe: it answers 200
// whenever the process can serve HTTP at all — during recovery, while
// ready, and while draining. Orchestrators that restart on failed
// liveness must not kill a server that is merely recovering or
// draining; that is what /readyz distinguishes.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK    bool   `json:"ok"`
		Role  string `json:"role"`
		Epoch int    `json:"epoch"`
	}{true, s.roleName(), s.pub.Epoch()})
}

// readyJSON is the /readyz body: besides the lifecycle state it names
// the node's replication role, fencing term, and — on followers — the
// replication lag in records, so a load balancer (or the smoke script)
// can route reads to a caught-up follower without a separate
// authenticated status call.
type readyJSON struct {
	Ready                 bool   `json:"ready"`
	State                 string `json:"state"`
	Role                  string `json:"role"`
	Term                  uint64 `json:"term"`
	ReplicationLagRecords int64  `json:"replication_lag_records"`
}

// handleReady is the unauthenticated readiness probe: 200 only when
// the server is accepting traffic — recovery finished, drain not
// begun, mirror not diverged. Load balancers route on this, and the
// smoke/chaos harnesses poll it instead of sleeping.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	out := readyJSON{Role: s.roleName(), Term: s.term.Load()}
	if s.role.Load() == roleFollower && s.repl != nil {
		out.ReplicationLagRecords = s.repl.lag()
	}
	status := http.StatusServiceUnavailable
	switch s.state.Load() {
	case stateReady:
		out.Ready, out.State = true, "ready"
		status = http.StatusOK
	case stateDraining:
		out.State = "draining"
	case stateDiverged:
		out.State = "diverged"
	default:
		out.State = "starting"
	}
	writeJSON(w, status, out)
}

// replayed serves a request whose charge is already durable (the
// client retried after losing the response). The release is recomputed
// with a nil accountant — wire determinism makes it byte-identical to
// the lost one — so the tenant is not charged twice. It reports false,
// deferring to the normal charged path, when the identity misses the
// cache or the current epoch no longer matches the recorded one (then
// the retry is semantically a fresh request and must pay).
func (s *Server) replayed(tenant string, seq int64, digest string) bool {
	if s.persist == nil {
		return false
	}
	return s.replay.has(tenant, replayKey{Seq: seq, Digest: digest, Epoch: s.pub.Epoch()})
}

// noteCharged records a durably charged request identity for replay
// detection. Called after the charge succeeded, which means its spend
// record — tagged with exactly this identity — is on disk.
func (s *Server) noteCharged(tenant string, seq int64, digest string, epoch int) {
	if s.persist == nil {
		return
	}
	s.replay.add(tenant, replayKey{Seq: seq, Digest: digest, Epoch: epoch})
}

// handleRelease serves POST /v1/release: one marginal, charged to the
// calling tenant.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request, t *privacy.Tenant) {
	req, _, explicit, err := decodeRelease(r.Body, false)
	if err != nil {
		writeError(w, err, t.Acct)
		return
	}
	seq := s.resolveSeq(t.Name, explicit)
	digest := requestDigest(digestRelease, []core.Request{req}, nil)
	stream := s.requestStream(t.Name, seq, digest)
	if s.replayed(t.Name, seq, digest) {
		if rel, err := s.pub.ReleaseMarginalFor(nil, req, stream); err == nil && rel.Epoch == s.pub.Epoch() {
			writeRelease(w, releaseToJSON(rel, seq, req.Attrs))
			return
		}
	}
	rel, err := s.pub.ReleaseMarginalTagged(t.Acct, req, stream, &privacy.SpendTag{Seq: seq, Digest: digest})
	if err != nil {
		writeError(w, err, t.Acct)
		return
	}
	s.noteCharged(t.Name, seq, digest, rel.Epoch)
	writeRelease(w, releaseToJSON(rel, seq, req.Attrs))
}

// batchJSON is the /v1/batch success response.
type batchJSON struct {
	Seq      int64         `json:"seq"`
	Releases []releaseJSON `json:"releases"`
}

// handleBatch serves POST /v1/batch: the whole batch is admitted or
// rejected before any scan or noise is paid for, and the accountant is
// charged atomically — a 429 batch spends nothing and reports the
// tenant's remaining budget.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, t *privacy.Tenant) {
	reqs, explicit, err := decodeBatch(r.Body)
	if err != nil {
		writeError(w, err, t.Acct)
		return
	}
	seq := s.resolveSeq(t.Name, explicit)
	digest := requestDigest(digestBatch, reqs, nil)
	stream := s.requestStream(t.Name, seq, digest)
	if s.replayed(t.Name, seq, digest) {
		if rels, err := s.pub.ReleaseBatchFor(nil, reqs, stream); err == nil &&
			len(rels) > 0 && rels[0].Epoch == s.pub.Epoch() {
			out := batchJSON{Seq: seq, Releases: make([]releaseJSON, len(rels))}
			for i, rel := range rels {
				out.Releases[i] = releaseToJSON(rel, seq, reqs[i].Attrs)
			}
			writeRelease(w, out)
			return
		}
	}
	rels, err := s.pub.ReleaseBatchTagged(t.Acct, reqs, stream, &privacy.SpendTag{Seq: seq, Digest: digest})
	if err != nil {
		writeError(w, err, t.Acct)
		return
	}
	if len(rels) > 0 {
		s.noteCharged(t.Name, seq, digest, rels[0].Epoch)
	}
	out := batchJSON{Seq: seq, Releases: make([]releaseJSON, len(rels))}
	for i, rel := range rels {
		out.Releases[i] = releaseToJSON(rel, seq, reqs[i].Attrs)
	}
	writeRelease(w, out)
}

// cellJSON is the /v1/cell success response.
type cellJSON struct {
	Epoch  int      `json:"epoch"`
	Seq    int64    `json:"seq"`
	Attrs  []string `json:"attrs"`
	Values []string `json:"values"`
	Loss   lossJSON `json:"loss"`
	Count  float64  `json:"count"`
}

// handleCell serves POST /v1/cell: one cell of a marginal (the paper's
// single-query regime — no d·ε marginal surcharge).
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request, t *privacy.Tenant) {
	req, values, explicit, err := decodeRelease(r.Body, true)
	if err != nil {
		writeError(w, err, t.Acct)
		return
	}
	seq := s.resolveSeq(t.Name, explicit)
	digest := requestDigest(digestCell, []core.Request{req}, values)
	stream := s.requestStream(t.Name, seq, digest)
	if s.replayed(t.Name, seq, digest) {
		if noisy, _, loss, epoch, err := s.pub.ReleaseSingleCellFor(nil, req, values, stream); err == nil && epoch == s.pub.Epoch() {
			writeRelease(w, cellJSON{
				Epoch: epoch, Seq: seq, Attrs: req.Attrs, Values: values,
				Loss: lossToJSON(loss), Count: noisy,
			})
			return
		}
	}
	noisy, _, loss, epoch, err := s.pub.ReleaseSingleCellTagged(t.Acct, req, values, stream, &privacy.SpendTag{Seq: seq, Digest: digest})
	if err != nil {
		writeError(w, err, t.Acct)
		return
	}
	s.noteCharged(t.Name, seq, digest, epoch)
	writeRelease(w, cellJSON{
		Epoch:  epoch,
		Seq:    seq,
		Attrs:  req.Attrs,
		Values: values,
		Loss:   lossToJSON(loss),
		Count:  noisy,
	})
}

// statsJSON is the /v1/stats response: the calling tenant's budget
// position plus the publisher's per-epoch cache counters. Tenants see
// only their own budget.
type statsJSON struct {
	Tenant         string           `json:"tenant"`
	Definition     string           `json:"definition"`
	Alpha          float64          `json:"alpha"`
	SpentEps       float64          `json:"spent_eps"`
	SpentDelta     float64          `json:"spent_delta"`
	RemainingEps   float64          `json:"remaining_eps"`
	RemainingDelta float64          `json:"remaining_delta"`
	Releases       int              `json:"releases"`
	SpendByEpoch   []epochSpendJSON `json:"spend_by_epoch"`
	Epoch          int              `json:"epoch"`
	Cache          []cacheStatsJSON `json:"cache"`
	ReplayCache    *replayCacheJSON `json:"replay_cache,omitempty"`
}

// replayCacheJSON reports the tenant's replay-dedup ring: the
// configured bound, the live occupancy, and how many identities this
// process has evicted (an evicted identity's retry re-charges).
type replayCacheJSON struct {
	Capacity  int   `json:"capacity"`
	Size      int   `json:"size"`
	Evictions int64 `json:"evictions"`
}

type epochSpendJSON struct {
	Epoch    int     `json:"epoch"`
	Eps      float64 `json:"eps"`
	Delta    float64 `json:"delta"`
	Releases int     `json:"releases"`
}

type cacheStatsJSON struct {
	Epoch     int   `json:"epoch"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Patches   int64 `json:"patches"`
	Evictions int64 `json:"evictions"`
}

// handleStats serves GET /v1/stats. A follower has no live
// accountants — charges happen on the primary — so it renders the
// tenant's position from the mirrored state instead.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, t *privacy.Tenant) {
	if s.role.Load() == roleFollower && s.repl != nil {
		writeJSON(w, http.StatusOK, s.followerStats(t))
		return
	}
	spent := t.Acct.Spent()
	remEps, remDelta := t.Acct.Remaining()
	ledger := t.Acct.SpendByEpoch()
	out := statsJSON{
		Tenant:         t.Name,
		Definition:     config.DefinitionToken(spent.Def),
		Alpha:          spent.Alpha,
		SpentEps:       spent.Eps,
		SpentDelta:     spent.Delta,
		RemainingEps:   remEps,
		RemainingDelta: remDelta,
		Releases:       t.Acct.Releases(),
		SpendByEpoch:   make([]epochSpendJSON, len(ledger)),
		Epoch:          s.pub.Epoch(),
	}
	for i, e := range ledger {
		out.SpendByEpoch[i] = epochSpendJSON{Epoch: e.Epoch, Eps: e.Eps, Delta: e.Delta, Releases: e.Releases}
	}
	for _, cs := range s.pub.CacheStatsByEpoch() {
		out.Cache = append(out.Cache, cacheStatsJSON{Epoch: cs.Epoch, Hits: cs.Hits, Misses: cs.Misses, Patches: cs.Patches, Evictions: cs.Evictions})
	}
	size, evictions, capacity := s.replay.stats(t.Name)
	out.ReplayCache = &replayCacheJSON{Capacity: capacity, Size: size, Evictions: evictions}
	writeJSON(w, http.StatusOK, out)
}

// advanceJSON is the /v1/admin/advance response.
type advanceJSON struct {
	Epoch    int              `json:"epoch"`
	Quarters []advanceQuarter `json:"quarters"`
}

// CachePatches and CacheEvictions report how the marginal cache crossed
// the bump: truths patched in place by the incremental maintenance path
// versus truths dropped for on-demand recomputation. A warm server
// should see patches, not evictions.
type advanceQuarter struct {
	Epoch          int   `json:"epoch"`
	Jobs           int   `json:"jobs"`
	Establishments int   `json:"establishments"`
	Births         int   `json:"births"`
	Deaths         int   `json:"deaths"`
	CachePatches   int64 `json:"cache_patches"`
	CacheEvictions int64 `json:"cache_evictions"`
}

// advanceErrorJSON is the /v1/admin/advance failure response. Quarters
// already absorbed before the failure are NOT rolled back (each one was
// installed and every tenant ledger advanced), so the body reports
// exactly how far the call got — an admin retrying after a partial
// failure can see that asking for the remaining quarters continues the
// same delta sequence a single successful call would have produced.
type advanceErrorJSON struct {
	Error            string           `json:"error"`
	QuartersAbsorbed int              `json:"quarters_absorbed"`
	Epoch            int              `json:"epoch"`
	Quarters         []advanceQuarter `json:"quarters,omitempty"`
}

// handleAdvance serves POST /v1/admin/advance: generate and absorb N
// quarterly deltas under live load. Serving never stalls — in-flight
// releases stay pinned to the snapshot they started on — and every
// tenant's spend ledger advances in lockstep with the dataset epoch.
//
// Seeding is by absolute quarter index: the q-th quarter absorbed over
// the server's lifetime draws from root+q, where root is the configured
// delta seed or the request's override. Because the index is absolute —
// not the loop index within one call — any split of N quarters into
// calls, including a retry after a partial failure, absorbs the exact
// delta sequence one N-quarter call would have.
func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	quarters, seedOverride, err := decodeAdvance(r.Body)
	if err != nil {
		writeError(w, err, nil)
		return
	}
	s.advMu.Lock()
	defer s.advMu.Unlock()
	out := advanceJSON{Quarters: make([]advanceQuarter, 0, quarters)}
	fail := func(q int, err error) {
		wrapped := fmt.Errorf("quarter %d: %w", q, err)
		writeJSON(w, statusFor(wrapped), advanceErrorJSON{
			Error:            wrapped.Error(),
			QuartersAbsorbed: len(out.Quarters),
			Epoch:            s.pub.Epoch(),
			Quarters:         out.Quarters,
		})
	}
	for q := 0; q < quarters; q++ {
		root := s.deltaSeed
		if seedOverride != nil {
			root = *seedOverride
		}
		seed := root + int64(s.quartersAbsorbed)
		data := s.pub.Dataset()
		dl, err := lodes.GenerateDelta(data, s.deltaCfg, dist.NewStreamFromSeed(seed))
		if err != nil {
			fail(q, err)
			return
		}
		if err := s.pub.Advance(dl); err != nil {
			fail(q, err)
			return
		}
		// The dataset advance is journaled after Advance succeeded (so
		// recovery never replays a record whose delta deterministically
		// fails to apply) and before any tenant ledger moves. A crash
		// before this record leaves the advance absent after recovery; a
		// crash after it finds the record, re-derives the delta from the
		// seed, and reconciles every tenant ledger — the advance is
		// atomic-on-recovery, never half-applied.
		if s.persist != nil {
			if err := s.persist.LogDatasetAdvance(s.quartersAbsorbed, seed); err != nil {
				fail(q, fmt.Errorf("%w: %v", privacy.ErrPersistence, err))
				return
			}
		}
		crashpoint.Maybe(crashAfterAdvance)
		// Every tenant's ledger follows the dataset epoch (each advance
		// durable before its ledger moves; a partial sweep heals on
		// recovery via the lineage reconcile).
		if err := s.reg.AdvanceEpoch(); err != nil {
			fail(q, err)
			return
		}
		s.quartersAbsorbed++
		s.quarterSeeds = append(s.quarterSeeds, seed)
		next := s.pub.Dataset()
		cs := s.pub.MarginalCacheStats()
		out.Quarters = append(out.Quarters, advanceQuarter{
			Epoch:          s.pub.Epoch(),
			Jobs:           next.NumJobs(),
			Establishments: next.NumEstablishments(),
			Births:         len(dl.Births),
			Deaths:         len(dl.Deaths),
			CachePatches:   cs.Patches,
			CacheEvictions: cs.Evictions,
		})
	}
	out.Epoch = s.pub.Epoch()
	writeJSON(w, http.StatusOK, out)
}
