package server

// End-to-end tests over real HTTP (httptest) proving the three serving
// properties the package documents:
//
//  1. Wire determinism — the same seed and request sequence produce
//     bit-identical response bytes, across server instances and under
//     concurrent clients (run with -race in CI).
//  2. Tenant budget isolation — one tenant exhausting its budget never
//     changes another tenant's releases, byte for byte, and a rejected
//     request spends nothing.
//  3. Snapshot pinning through the network layer — a fleet of clients
//     served during admin epoch advances only ever sees responses that
//     are exact recomputations of some single epoch; no response mixes
//     epochs, and every byte is reproducible offline.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
)

const (
	keyAlpha = "key-tenant-alpha"
	keyBeta  = "key-tenant-beta"
	keyAdmin = "key-admin"
)

// tenantSpec configures one test tenant (weak-ER-EE, α=0.1 budgets, the
// permissive serving default).
type tenantSpec struct {
	name, key  string
	eps, delta float64
}

func testDataset(tb testing.TB, seed int64) *lodes.Dataset {
	tb.Helper()
	cfg := lodes.TestConfig()
	cfg.NumEstablishments = 500
	return lodes.MustGenerate(cfg, dist.NewStreamFromSeed(seed))
}

// newTestServer builds a server over a freshly generated dataset and
// starts it on a real socket. With no tenants given, one ample-budget
// tenant "alpha" (keyAlpha) is registered.
func newTestServer(tb testing.TB, dataSeed int64, opts Options, tenants []tenantSpec) (*Server, *httptest.Server) {
	tb.Helper()
	if len(tenants) == 0 {
		tenants = []tenantSpec{{name: "alpha", key: keyAlpha, eps: 1e6, delta: 0.5}}
	}
	reg := privacy.NewRegistry()
	for _, spec := range tenants {
		acct, err := privacy.NewAccountant(privacy.WeakEREE, 0.1, spec.eps, spec.delta)
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := reg.Register(spec.name, spec.key, acct); err != nil {
			tb.Fatal(err)
		}
	}
	srv := New(core.NewPublisher(testDataset(tb, dataSeed)), reg, opts)
	hs := httptest.NewServer(srv.Handler())
	tb.Cleanup(hs.Close)
	return srv, hs
}

// do issues one request and returns (status, body). Transport failures
// are reported with Error (goroutine-safe) and surface as status 0.
func do(tb testing.TB, hs *httptest.Server, method, path, key, body string) (int, []byte) {
	tb.Helper()
	req, err := http.NewRequest(method, hs.URL+path, bytes.NewReader([]byte(body)))
	if err != nil {
		tb.Errorf("%s %s: %v", method, path, err)
		return 0, nil
	}
	if key != "" {
		req.Header.Set(apiKeyHeader, key)
	}
	resp, err := hs.Client().Do(req)
	if err != nil {
		tb.Errorf("%s %s: %v", method, path, err)
		return 0, nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Errorf("%s %s: read body: %v", method, path, err)
		return 0, nil
	}
	return resp.StatusCode, raw
}

type scriptReq struct{ path, body string }

// determinismScript is a mixed request sequence — marginal releases,
// atomic batches and single cells — with explicit sequence numbers, so
// its responses are a pure function of the server's configuration.
func determinismScript() []scriptReq {
	var script []scriptReq
	for i := 0; i < 6; i++ {
		script = append(script,
			scriptReq{"/v1/release", fmt.Sprintf(
				`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":2,"seq":%d}`, i)},
			scriptReq{"/v1/release", fmt.Sprintf(
				`{"attrs":["sex"],"mechanism":"log-laplace","alpha":0.1,"eps":1,"seq":%d}`, 100+i)},
			scriptReq{"/v1/batch", fmt.Sprintf(
				`{"requests":[{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1},`+
					`{"attrs":["ownership"],"mechanism":"smooth-laplace","alpha":0.1,"eps":2,"delta":0.05}],"seq":%d}`, 200+i)},
			scriptReq{"/v1/cell", fmt.Sprintf(
				`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,`+
					`"values":["%s","44-Retail","Private"],"seq":%d}`, lodes.PlaceName(0), 300+i)},
		)
	}
	return script
}

// TestWireDeterminism: the same seed and request sequence yield
// bit-identical JSON — across independent server instances, and when
// the same sequence is replayed by eight concurrent clients.
func TestWireDeterminism(t *testing.T) {
	opts := Options{NoiseSeed: 7, AdminKey: keyAdmin, DeltaSeed: 100}
	script := determinismScript()
	sequential := func(hs *httptest.Server) [][]byte {
		out := make([][]byte, len(script))
		for i, sr := range script {
			status, body := do(t, hs, "POST", sr.path, keyAlpha, sr.body)
			if status != http.StatusOK {
				t.Fatalf("request %d (%s) = %d: %s", i, sr.path, status, body)
			}
			out[i] = body
		}
		return out
	}

	_, hs1 := newTestServer(t, 1, opts, nil)
	_, hs2 := newTestServer(t, 1, opts, nil)
	got1, got2 := sequential(hs1), sequential(hs2)
	for i := range got1 {
		if !bytes.Equal(got1[i], got2[i]) {
			t.Fatalf("request %d: servers diverge:\n  a: %s\n  b: %s", i, got1[i], got2[i])
		}
	}

	// Same sequence, eight concurrent clients against a third identical
	// server: interleaving must never show in the bytes.
	_, hs3 := newTestServer(t, 1, opts, nil)
	got3 := make([][]byte, len(script))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(script); i += 8 {
				status, body := do(t, hs3, "POST", script[i].path, keyAlpha, script[i].body)
				if status != http.StatusOK {
					t.Errorf("concurrent request %d = %d: %s", i, status, body)
					return
				}
				got3[i] = body
			}
		}(w)
	}
	wg.Wait()
	for i := range got1 {
		if !bytes.Equal(got1[i], got3[i]) {
			t.Fatalf("request %d: concurrent bytes diverge from sequential:\n  seq: %s\n  conc: %s",
				i, got1[i], got3[i])
		}
	}
}

// TestRequestNoiseSeparation pins the digest half of the derivation:
// two *different* requests issued under the same (tenant, seq) must
// draw independent noise. Without the content digest, both would share
// base noise, and a tenant could difference the two responses (e.g. the
// same marginal at two ε) to cancel the noise and recover true counts
// while being charged for two independent releases.
func TestRequestNoiseSeparation(t *testing.T) {
	opts := Options{NoiseSeed: 7}
	srv, hs := newTestServer(t, 1, opts, nil)
	attrs := []string{"industry"}
	bodyFor := func(eps float64) string {
		return fmt.Sprintf(`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":%g,"seq":0}`, eps)
	}
	status, bodyA := do(t, hs, "POST", "/v1/release", keyAlpha, bodyFor(1))
	if status != http.StatusOK {
		t.Fatalf("release A = %d: %s", status, bodyA)
	}
	status, bodyB := do(t, hs, "POST", "/v1/release", keyAlpha, bodyFor(2))
	if status != http.StatusOK {
		t.Fatalf("release B = %d: %s", status, bodyB)
	}

	reqA := core.Request{Attrs: attrs, Mechanism: core.MechSmoothGamma, Alpha: 0.1, Eps: 1}
	reqB := reqA
	reqB.Eps = 2
	root := dist.NewStreamFromSeed(opts.NoiseSeed)
	streamFor := func(digest string) *dist.Stream {
		return root.Split("tenant:alpha").SplitIndex("req", 0).Split("body:" + digest)
	}
	render := func(rel *core.Release) []byte {
		raw, err := json.Marshal(releaseToJSON(rel, 0, attrs))
		if err != nil {
			t.Fatal(err)
		}
		return append(raw, '\n')
	}

	// True replay: B recomputed offline on its own digest reproduces the
	// wire bytes exactly.
	relB, err := srv.pub.ReleaseMarginalFor(nil, reqB, streamFor(requestDigest(digestRelease, []core.Request{reqB}, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bodyB, render(relB)) {
		t.Fatalf("offline recomputation diverges from the wire:\n  got:  %s\n  want: %s", render(relB), bodyB)
	}
	// The differencing attack's precondition: B drawn from A's stream —
	// what a digest-less (tenant, seq)-only derivation would produce —
	// must NOT be what the server actually sent.
	relShared, err := srv.pub.ReleaseMarginalFor(nil, reqB, streamFor(requestDigest(digestRelease, []core.Request{reqA}, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bodyB, render(relShared)) {
		t.Fatal("two different requests under one (tenant, seq) drew the same base noise")
	}
}

// TestAdvanceSeedContinuity: with an explicit seed override, the delta
// sequence depends only on the absolute quarter index — any split of N
// quarters into calls (including a retry after a partial failure)
// absorbs the exact lineage one N-quarter call would have.
func TestAdvanceSeedContinuity(t *testing.T) {
	opts := Options{NoiseSeed: 7, AdminKey: keyAdmin, DeltaSeed: 100}
	_, split := newTestServer(t, 1, opts, nil)
	_, whole := newTestServer(t, 1, opts, nil)
	advance := func(hs *httptest.Server, body string) advanceJSON {
		status, raw := do(t, hs, "POST", "/v1/admin/advance", keyAdmin, body)
		if status != http.StatusOK {
			t.Fatalf("advance = %d: %s", status, raw)
		}
		var out advanceJSON
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a1 := advance(split, `{"quarters":1,"seed":777}`)
	a2 := advance(split, `{"quarters":1,"seed":777}`)
	b := advance(whole, `{"quarters":2,"seed":777}`)
	got := append(append([]advanceQuarter(nil), a1.Quarters...), a2.Quarters...)
	if !reflect.DeepEqual(got, b.Quarters) {
		t.Fatalf("split advances diverge from one call:\n  split: %+v\n  whole: %+v", got, b.Quarters)
	}
	// The resulting datasets are the same dataset: identical releases,
	// byte for byte.
	rel := `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"seq":0}`
	_, ra := do(t, split, "POST", "/v1/release", keyAlpha, rel)
	_, rb := do(t, whole, "POST", "/v1/release", keyAlpha, rel)
	if !bytes.Equal(ra, rb) {
		t.Fatalf("post-advance releases diverge:\n  split: %s\n  whole: %s", ra, rb)
	}
}

// TestAdvanceWarmCacheTelemetry: a server advanced while its marginal
// cache is warm reports the maintenance outcome — truths patched in
// place, none evicted — in both the /v1/admin/advance structured
// response and the per-epoch cache section of /v1/stats, and the warm
// truth keeps serving as a hit in the new epoch.
func TestAdvanceWarmCacheTelemetry(t *testing.T) {
	opts := Options{NoiseSeed: 7, AdminKey: keyAdmin, DeltaSeed: 100}
	_, hs := newTestServer(t, 1, opts, nil)

	// Warm two truths: one workplace marginal, one worker marginal.
	for i, body := range []string{
		`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"seq":0}`,
		`{"attrs":["industry","education"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"seq":1}`,
	} {
		if status, raw := do(t, hs, "POST", "/v1/release", keyAlpha, body); status != http.StatusOK {
			t.Fatalf("warming release %d = %d: %s", i, status, raw)
		}
	}

	status, raw := do(t, hs, "POST", "/v1/admin/advance", keyAdmin, `{"quarters":1}`)
	if status != http.StatusOK {
		t.Fatalf("advance = %d: %s", status, raw)
	}
	var adv advanceJSON
	if err := json.Unmarshal(raw, &adv); err != nil {
		t.Fatal(err)
	}
	if len(adv.Quarters) != 1 {
		t.Fatalf("quarters = %+v, want exactly one", adv.Quarters)
	}
	q := adv.Quarters[0]
	if q.CachePatches != 2 || q.CacheEvictions != 0 {
		t.Errorf("advance reported %d patches / %d evictions, want 2 / 0: %s",
			q.CachePatches, q.CacheEvictions, raw)
	}

	// The patched truth serves the new epoch from cache: re-releasing one
	// warmed attribute set must not add a miss.
	if status, raw := do(t, hs, "POST", "/v1/release", keyAlpha,
		`{"attrs":["industry","education"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"seq":2}`); status != http.StatusOK {
		t.Fatalf("post-advance release = %d: %s", status, raw)
	}
	status, raw = do(t, hs, "GET", "/v1/stats", keyAlpha, "")
	if status != http.StatusOK {
		t.Fatalf("stats = %d: %s", status, raw)
	}
	var stats struct {
		Cache []cacheStatsJSON `json:"cache"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Cache) != 2 {
		t.Fatalf("cache history = %+v, want two epochs: %s", stats.Cache, raw)
	}
	if e0 := stats.Cache[0]; e0.Patches != 0 {
		t.Errorf("epoch 0 reports %d patches, want 0: %s", e0.Patches, raw)
	}
	e1 := stats.Cache[1]
	if e1.Epoch != 1 || e1.Patches != 2 || e1.Evictions != 0 {
		t.Errorf("epoch 1 cache = %+v, want epoch 1 with 2 patches / 0 evictions: %s", e1, raw)
	}
	if e1.Misses != 0 || e1.Hits != 1 {
		t.Errorf("epoch 1 served %d hits / %d misses, want 1 / 0 (patched truth stays warm): %s",
			e1.Hits, e1.Misses, raw)
	}
}

// TestAdvanceErrorReportsProgress: a failing advance reports how far it
// got — quarters absorbed in this call, the epoch actually reached, and
// the per-quarter summaries — so an admin can resume instead of
// guessing what applied.
func TestAdvanceErrorReportsProgress(t *testing.T) {
	bad := lodes.DefaultDeltaConfig()
	bad.GrowthSigma = -1 // rejected by DeltaConfig.Validate at generation time
	opts := Options{NoiseSeed: 7, AdminKey: keyAdmin, DeltaSeed: 100, DeltaConfig: &bad}
	_, hs := newTestServer(t, 1, opts, nil)
	status, raw := do(t, hs, "POST", "/v1/admin/advance", keyAdmin, `{"quarters":2}`)
	// A misconfigured generator is a server fault, not client input.
	if status != http.StatusInternalServerError {
		t.Fatalf("advance with broken config = %d, want 500: %s", status, raw)
	}
	var out struct {
		Error            string           `json:"error"`
		QuartersAbsorbed *int             `json:"quarters_absorbed"`
		Epoch            *int             `json:"epoch"`
		Quarters         []advanceQuarter `json:"quarters"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Error == "" {
		t.Fatalf("error body carries no message: %s", raw)
	}
	if out.QuartersAbsorbed == nil || *out.QuartersAbsorbed != 0 {
		t.Fatalf("quarters_absorbed = %v, want 0: %s", out.QuartersAbsorbed, raw)
	}
	if out.Epoch == nil || *out.Epoch != 0 {
		t.Fatalf("epoch = %v, want 0: %s", out.Epoch, raw)
	}
	if len(out.Quarters) != 0 {
		t.Fatalf("quarters = %+v, want none absorbed: %s", out.Quarters, raw)
	}
	// The failed advance left the dataset untouched.
	status, raw = do(t, hs, "GET", "/healthz", "", "")
	if status != http.StatusOK || !bytes.Contains(raw, []byte(`"epoch":0`)) {
		t.Fatalf("healthz after failed advance = %d: %s", status, raw)
	}
}

// TestTenantBudgetIsolation: tenant alpha exhausting its budget — by
// single releases and by batch admission — never changes tenant beta's
// bytes, and every rejection spends nothing.
func TestTenantBudgetIsolation(t *testing.T) {
	opts := Options{NoiseSeed: 7}
	tenants := []tenantSpec{
		{name: "alpha", key: keyAlpha, eps: 4.5, delta: 0.5},
		{name: "beta", key: keyBeta, eps: 1e6, delta: 0.5},
	}
	betaScript := []scriptReq{
		{"/v1/release", `{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":2,"seq":0}`},
		{"/v1/release", `{"attrs":["sex"],"mechanism":"log-laplace","alpha":0.1,"eps":1,"seq":1}`},
		{"/v1/batch", `{"requests":[{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}],"seq":2}`},
	}
	collect := func(hs *httptest.Server) [][]byte {
		out := make([][]byte, len(betaScript))
		for i, sr := range betaScript {
			status, body := do(t, hs, "POST", sr.path, keyBeta, sr.body)
			if status != http.StatusOK {
				t.Fatalf("beta request %d = %d: %s", i, status, body)
			}
			out[i] = body
		}
		return out
	}

	// Baseline: beta alone on an identically configured server.
	_, quiet := newTestServer(t, 1, opts, tenants)
	baseline := collect(quiet)

	// Busy server: alpha spends, overdraws, and is finally exhausted.
	srv, busy := newTestServer(t, 1, opts, tenants)
	alphaAcct := func() *privacy.Accountant {
		tn, ok := srv.reg.Tenant("alpha")
		if !ok {
			t.Fatal("tenant alpha not registered")
		}
		return tn.Acct
	}
	release := func(eps float64, seq int) (int, []byte) {
		return do(t, busy, "POST", "/v1/release", keyAlpha, fmt.Sprintf(
			`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":%g,"seq":%d}`, eps, seq))
	}
	if status, body := release(2, 0); status != http.StatusOK {
		t.Fatalf("alpha release = %d: %s", status, body)
	}
	remEps, _ := alphaAcct().Remaining()
	if remEps != 2.5 {
		t.Fatalf("alpha remaining eps = %g, want 2.5", remEps)
	}
	// Over-budget single release: 429 carrying the remaining budget.
	status, body := release(4, 1)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-budget release = %d: %s", status, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.RemainingEps == nil || *eb.RemainingEps != 2.5 {
		t.Fatalf("429 body reports remaining eps %v, want 2.5: %s", eb.RemainingEps, body)
	}
	// Over-budget batch: fail-fast admission control, nothing spent.
	status, body = do(t, busy, "POST", "/v1/batch", keyAlpha,
		`{"requests":[{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1},`+
			`{"attrs":["ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1},`+
			`{"attrs":["sex"],"mechanism":"log-laplace","alpha":0.1,"eps":1}],"seq":2}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-budget batch = %d: %s", status, body)
	}
	if got, _ := alphaAcct().Remaining(); got != 2.5 {
		t.Fatalf("rejected requests spent budget: remaining eps %g, want 2.5", got)
	}
	// The rejections cost nothing, so this still fits.
	if status, body := release(2, 3); status != http.StatusOK {
		t.Fatalf("affordable release after rejections = %d: %s", status, body)
	}
	if status, _ := release(2, 4); status != http.StatusTooManyRequests {
		t.Fatalf("exhausted alpha release = %d, want 429", status)
	}

	// Beta's bytes are identical to the quiet baseline.
	for i, got := range collect(busy) {
		if !bytes.Equal(got, baseline[i]) {
			t.Fatalf("beta request %d diverges when alpha is busy:\n  quiet: %s\n  busy: %s",
				i, baseline[i], got)
		}
	}
}

// TestServeDuringAdvanceFleet extends TestAdvanceSnapshotPinning through
// the network layer: six clients hammer /v1/release while the admin
// endpoint absorbs three quarterly deltas. Every observed response must
// be a bit-exact offline recomputation against the single epoch it
// reports — an in-flight request that read epoch-N+1 rows while
// reporting epoch N would fail the comparison.
func TestServeDuringAdvanceFleet(t *testing.T) {
	const quarters = 3
	const dataSeed = 56
	opts := Options{NoiseSeed: 11, AdminKey: keyAdmin, DeltaSeed: 400}

	// The expected epoch lineage, applied independently of the server:
	// quarter q draws from DeltaSeed+q with the default delta config.
	datasets := make([]*lodes.Dataset, quarters+1)
	datasets[0] = testDataset(t, dataSeed)
	for q := 0; q < quarters; q++ {
		dl, err := lodes.GenerateDelta(datasets[q], lodes.DefaultDeltaConfig(), dist.NewStreamFromSeed(opts.DeltaSeed+int64(q)))
		if err != nil {
			t.Fatal(err)
		}
		if datasets[q+1], err = datasets[q].ApplyDelta(dl); err != nil {
			t.Fatal(err)
		}
	}

	_, hs := newTestServer(t, dataSeed, opts, nil)
	attrs := []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership}
	bodyFor := func(seq int64) string {
		return fmt.Sprintf(
			`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":%d}`, seq)
	}

	type obs struct {
		seq  int64
		body []byte
	}
	stop := make(chan struct{})
	var mu sync.Mutex
	var observed []obs
	var served atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				seq := int64(g)*100000 + int64(i)
				status, body := do(t, hs, "POST", "/v1/release", keyAlpha, bodyFor(seq))
				if status != http.StatusOK {
					t.Errorf("fleet release seq %d = %d: %s", seq, status, body)
					return
				}
				mu.Lock()
				observed = append(observed, obs{seq, body})
				mu.Unlock()
				served.Add(1)
			}
		}(g)
	}

	// Require serving progress before and after every advance, so
	// releases demonstrably overlap the update path.
	waitFor := func(target int64) {
		deadline := time.Now().Add(10 * time.Second)
		for served.Load() < target && time.Now().Before(deadline) {
			runtime.Gosched()
		}
	}
	var floor int64
	for q := 0; q < quarters; q++ {
		waitFor(floor + 5)
		status, body := do(t, hs, "POST", "/v1/admin/advance", keyAdmin, `{"quarters":1}`)
		if status != http.StatusOK {
			t.Fatalf("advance %d = %d: %s", q, status, body)
		}
		var adv struct {
			Epoch int `json:"epoch"`
		}
		if err := json.Unmarshal(body, &adv); err != nil {
			t.Fatal(err)
		}
		if adv.Epoch != q+1 {
			t.Fatalf("advance %d landed on epoch %d, want %d", q, adv.Epoch, q+1)
		}
		floor = served.Load()
	}
	waitFor(floor + 5)
	close(stop)
	wg.Wait()

	// Offline recomputation: one publisher per epoch of the independent
	// lineage, the server's exact noise derivation — tenant split, seq
	// split, request-content digest split (the publisher folds in the
	// epoch itself) — and the handler's exact rendering. Every observed
	// byte must match.
	pubs := make([]*core.Publisher, quarters+1)
	for e := range pubs {
		pubs[e] = core.NewPublisher(datasets[e])
	}
	root := dist.NewStreamFromSeed(opts.NoiseSeed)
	req := core.Request{Attrs: attrs, Mechanism: core.MechSmoothGamma, Alpha: 0.1, Eps: 0.5}
	digest := requestDigest(digestRelease, []core.Request{req}, nil)
	epochsSeen := make(map[int]int)
	for _, o := range observed {
		var got releaseJSON
		if err := json.Unmarshal(o.body, &got); err != nil {
			t.Fatalf("seq %d: %v", o.seq, err)
		}
		if got.Epoch < 0 || got.Epoch > quarters {
			t.Fatalf("seq %d reports epoch %d, outside [0,%d]", o.seq, got.Epoch, quarters)
		}
		epochsSeen[got.Epoch]++
		stream := root.Split("tenant:alpha").SplitIndex("req", int(o.seq)).Split("body:" + digest)
		rel, err := pubs[got.Epoch].ReleaseMarginalFor(nil, req, stream)
		if err != nil {
			t.Fatalf("seq %d: offline recomputation: %v", o.seq, err)
		}
		want, err := json.Marshal(releaseToJSON(rel, o.seq, attrs))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		if !bytes.Equal(o.body, want) {
			t.Fatalf("seq %d: response is not a bit-exact epoch-%d recomputation:\n  got:  %s\n  want: %s",
				o.seq, got.Epoch, o.body, want)
		}
	}
	if epochsSeen[0] == 0 || epochsSeen[quarters] == 0 {
		t.Errorf("fleet did not span the advance: epochs seen %v", epochsSeen)
	}

	// The world after the dust settles: final epoch everywhere, and the
	// tenant's ledger attributes spend to the epochs it happened in.
	status, body := do(t, hs, "GET", "/healthz", "", "")
	if status != http.StatusOK {
		t.Fatalf("healthz = %d", status)
	}
	var health struct {
		OK    bool `json:"ok"`
		Epoch int  `json:"epoch"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || health.Epoch != quarters {
		t.Fatalf("healthz reports %+v, want ok at epoch %d", health, quarters)
	}
	status, body = do(t, hs, "GET", "/v1/stats", keyAlpha, "")
	if status != http.StatusOK {
		t.Fatalf("stats = %d: %s", status, body)
	}
	var stats statsJSON
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	var ledgerReleases int
	for _, e := range stats.SpendByEpoch {
		ledgerReleases += e.Releases
	}
	if ledgerReleases != len(observed) || stats.Releases != len(observed) {
		t.Errorf("ledger attributes %d releases (total %d), fleet made %d",
			ledgerReleases, stats.Releases, len(observed))
	}
	if got := stats.SpentEps; got != 0.5*float64(len(observed)) {
		t.Errorf("spent eps = %g, want %g", got, 0.5*float64(len(observed)))
	}
}
