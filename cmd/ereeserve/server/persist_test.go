package server

// Tests for the durability layer below the chaos harness (which kills
// real processes; see cmd/ereeserve/chaos_test.go): recovery is
// bit-identical, duplicate requests after recovery are served without a
// second charge, a dead accounting store degrades to 503 rather than
// serving uncharged bytes, and compaction bounds the state directory.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/privacy"
)

func testRegistry(tb testing.TB, tenants []tenantSpec) *privacy.Registry {
	tb.Helper()
	if len(tenants) == 0 {
		tenants = []tenantSpec{{name: "alpha", key: keyAlpha, eps: 1e6, delta: 0.5}}
	}
	reg := privacy.NewRegistry()
	for _, spec := range tenants {
		acct, err := privacy.NewAccountant(privacy.WeakEREE, 0.1, spec.eps, spec.delta)
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := reg.Register(spec.name, spec.key, acct); err != nil {
			tb.Fatal(err)
		}
	}
	return reg
}

// openDurable boots a durable server over dir. Abandoning the returned
// server without closing it models a crash: every charge is already on
// disk, only buffered OS state (which a kill loses anyway) is in play.
func openDurable(tb testing.TB, dir string, dataSeed int64, opts Options, tenants []tenantSpec) (*Server, *httptest.Server) {
	tb.Helper()
	opts.StateDir = dir
	srv, err := Open(core.NewPublisher(testDataset(tb, dataSeed)), testRegistry(tb, tenants), opts)
	if err != nil {
		tb.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	tb.Cleanup(hs.Close)
	return srv, hs
}

func tenantOf(tb testing.TB, srv *Server, name string) *privacy.Tenant {
	tb.Helper()
	t, ok := srv.reg.Tenant(name)
	if !ok {
		tb.Fatalf("tenant %q not registered", name)
	}
	return t
}

// TestRecoveryBitIdentical drives a durable server through releases, a
// batch, a cell and an epoch advance, abandons it mid-life (no
// shutdown, no compaction — the log is the only truth), re-opens the
// state directory, and demands the recovered accounting be
// bit-identical: spent floats, per-epoch ledger, release counts, epoch.
func TestRecoveryBitIdentical(t *testing.T) {
	dir := t.TempDir()
	opts := Options{NoiseSeed: 7, AdminKey: keyAdmin, DeltaSeed: 100}
	srv1, hs1 := openDurable(t, dir, 1, opts, nil)

	script := []scriptReq{
		{"/v1/release", `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":0}`},
		{"/v1/batch", `{"seq":1,"requests":[{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5},{"attrs":["ownership"],"mechanism":"smooth-laplace","alpha":0.1,"eps":4,"delta":1e-9}]}`},
		{"/v1/cell", `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"values":["44-Retail"],"seq":2}`},
	}
	for _, rq := range script {
		if status, body := do(t, hs1, "POST", rq.path, keyAlpha, rq.body); status != http.StatusOK {
			t.Fatalf("POST %s = %d: %s", rq.path, status, body)
		}
	}
	if status, body := do(t, hs1, "POST", "/v1/admin/advance", keyAdmin, `{"quarters":1}`); status != http.StatusOK {
		t.Fatalf("advance = %d: %s", status, body)
	}
	// Spend in the new epoch too, so the recovered ledger tail is
	// non-trivial.
	if status, body := do(t, hs1, "POST", "/v1/release", keyAlpha, `{"attrs":["ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.75,"seq":3}`); status != http.StatusOK {
		t.Fatalf("post-advance release = %d: %s", status, body)
	}
	acct1 := tenantOf(t, srv1, "alpha").Acct
	wantSpent := acct1.Spent()
	wantLedger := acct1.SpendByEpoch()
	wantReleases := acct1.Releases()
	wantEpoch := srv1.pub.Epoch()
	hs1.Close() // stop traffic; deliberately no Shutdown/Compact

	srv2, _ := openDurable(t, dir, 1, opts, nil)
	acct2 := tenantOf(t, srv2, "alpha").Acct
	if got := acct2.Spent(); got != wantSpent {
		t.Fatalf("recovered Spent = %+v, want bit-identical %+v", got, wantSpent)
	}
	if got := acct2.Releases(); got != wantReleases {
		t.Fatalf("recovered Releases = %d, want %d", got, wantReleases)
	}
	if got := srv2.pub.Epoch(); got != wantEpoch {
		t.Fatalf("recovered publisher epoch = %d, want %d", got, wantEpoch)
	}
	gotLedger := acct2.SpendByEpoch()
	if len(gotLedger) != len(wantLedger) {
		t.Fatalf("recovered ledger has %d epochs, want %d", len(gotLedger), len(wantLedger))
	}
	for i := range wantLedger {
		if gotLedger[i] != wantLedger[i] {
			t.Fatalf("ledger epoch %d: recovered %+v, want %+v", i, gotLedger[i], wantLedger[i])
		}
	}
	if got := acct2.Epoch(); got != wantEpoch {
		t.Fatalf("recovered accountant epoch = %d, want %d", got, wantEpoch)
	}
}

// TestRecoveryReplaysDuplicateWithoutCharging: a charged request
// re-sent after recovery (same tenant, seq, body) is answered with the
// exact bytes of the original response and spends nothing — the
// write-ahead record plus wire determinism make the response
// recomputable for free.
func TestRecoveryReplaysDuplicateWithoutCharging(t *testing.T) {
	dir := t.TempDir()
	opts := Options{NoiseSeed: 7}
	_, hs1 := openDurable(t, dir, 1, opts, nil)
	body := `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":9}`
	status, orig := do(t, hs1, "POST", "/v1/release", keyAlpha, body)
	if status != http.StatusOK {
		t.Fatalf("release = %d: %s", status, orig)
	}
	hs1.Close()

	srv2, hs2 := openDurable(t, dir, 1, opts, nil)
	acct := tenantOf(t, srv2, "alpha").Acct
	spentAfterRecovery := acct.Spent()
	if spentAfterRecovery.Eps == 0 {
		t.Fatal("recovery lost the charge")
	}
	status, replay := do(t, hs2, "POST", "/v1/release", keyAlpha, body)
	if status != http.StatusOK {
		t.Fatalf("replayed release = %d: %s", status, replay)
	}
	if string(replay) != string(orig) {
		t.Fatalf("replayed response differs from original:\n  orig:   %s\n  replay: %s", orig, replay)
	}
	if got := acct.Spent(); got != spentAfterRecovery {
		t.Fatalf("replay charged the tenant again: %+v -> %+v", spentAfterRecovery, got)
	}
	// A genuinely new request still charges.
	if status, _ := do(t, hs2, "POST", "/v1/release", keyAlpha,
		`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":10}`); status != http.StatusOK {
		t.Fatalf("fresh release = %d", status)
	}
	if got := acct.Spent(); got == spentAfterRecovery {
		t.Fatal("fresh request did not charge")
	}
}

// TestLiveDuplicateSeqServedOnce: the dedup path also covers a live
// client retrying a request whose response it lost (no crash needed).
func TestLiveDuplicateSeqServedOnce(t *testing.T) {
	srv, hs := openDurable(t, t.TempDir(), 1, Options{NoiseSeed: 7}, nil)
	acct := tenantOf(t, srv, "alpha").Acct
	body := `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":4}`
	_, first := do(t, hs, "POST", "/v1/release", keyAlpha, body)
	spent := acct.Spent()
	_, second := do(t, hs, "POST", "/v1/release", keyAlpha, body)
	if string(first) != string(second) {
		t.Fatalf("retry differs:\n  %s\n  %s", first, second)
	}
	if acct.Spent() != spent {
		t.Fatal("retry double-charged")
	}
}

// TestDeadStoreShedsInsteadOfServing: once the accounting store cannot
// write, releases must fail closed — 503 with Retry-After, nothing
// spent, no noisy bytes — because a response without a durable charge
// record would be an unaccounted release after the next crash.
func TestDeadStoreShedsInsteadOfServing(t *testing.T) {
	srv, hs := openDurable(t, t.TempDir(), 1, Options{NoiseSeed: 7}, nil)
	acct := tenantOf(t, srv, "alpha").Acct
	if err := srv.persist.store.Close(); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", hs.URL+"/v1/release",
		strings.NewReader(`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(apiKeyHeader, keyAlpha)
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("release on dead store = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if got := acct.Spent(); got.Eps != 0 {
		t.Fatalf("dead store still spent %+v", got)
	}
}

// TestCompactionBoundsStateDir: every boot folds the log into a fresh
// snapshot, so the directory never accumulates old generations — at
// any quiet moment it is exactly one snapshot plus one log.
func TestCompactionBoundsStateDir(t *testing.T) {
	dir := t.TempDir()
	for boot := 0; boot < 3; boot++ {
		srv, hs := openDurable(t, dir, 1, Options{NoiseSeed: 7}, nil)
		for i := 0; i < 4; i++ {
			body := `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}`
			if status, _ := do(t, hs, "POST", "/v1/release", keyAlpha, body); status != http.StatusOK {
				t.Fatalf("boot %d release %d failed", boot, i)
			}
		}
		hs.Close()
		if err := srv.closePersistent(); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 2 {
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = e.Name()
			}
			t.Fatalf("boot %d: state dir holds %v, want exactly one snapshot + one log", boot, names)
		}
	}
}

// TestRecoveryRefusesChangedDefinition: spend history recorded under
// one privacy definition must not be reinterpreted under another — a
// changed tenant definition or α is a boot error, not a silent reset.
func TestRecoveryRefusesChangedDefinition(t *testing.T) {
	dir := t.TempDir()
	_, hs := openDurable(t, dir, 1, Options{NoiseSeed: 7}, nil)
	if status, _ := do(t, hs, "POST", "/v1/release", keyAlpha,
		`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}`); status != http.StatusOK {
		t.Fatal("seed release failed")
	}
	hs.Close()

	reg := privacy.NewRegistry()
	acct, err := privacy.NewAccountant(privacy.StrongEREE, 2, 1e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register("alpha", keyAlpha, acct); err != nil {
		t.Fatal(err)
	}
	_, err = Open(core.NewPublisher(testDataset(t, 1)), reg, Options{NoiseSeed: 7, StateDir: dir})
	if err == nil {
		t.Fatal("Open accepted a tenant whose privacy definition changed under recorded history")
	}
}

// TestRecoveryHonorsShrunkBudget: an operator may cut a budget below
// the recorded spend; recovery keeps the history and the tenant is
// simply exhausted, never reset.
func TestRecoveryHonorsShrunkBudget(t *testing.T) {
	dir := t.TempDir()
	big := []tenantSpec{{name: "alpha", key: keyAlpha, eps: 10, delta: 0.5}}
	_, hs := openDurable(t, dir, 1, Options{NoiseSeed: 7}, big)
	if status, _ := do(t, hs, "POST", "/v1/release", keyAlpha,
		`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":5}`); status != http.StatusOK {
		t.Fatal("seed release failed")
	}
	hs.Close()

	small := []tenantSpec{{name: "alpha", key: keyAlpha, eps: 1, delta: 0.5}}
	srv2, hs2 := openDurable(t, dir, 1, Options{NoiseSeed: 7}, small)
	if got := tenantOf(t, srv2, "alpha").Acct.Spent().Eps; got != 5 {
		t.Fatalf("recovered spend = %g, want 5", got)
	}
	status, body := do(t, hs2, "POST", "/v1/release", keyAlpha,
		`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("charge over shrunk budget = %d (%s), want 429", status, body)
	}
}

// TestStatsSurviveRecovery: the wire-visible budget position is
// unchanged by a crash/recover cycle.
func TestStatsSurviveRecovery(t *testing.T) {
	dir := t.TempDir()
	_, hs1 := openDurable(t, dir, 1, Options{NoiseSeed: 7}, nil)
	for i := 0; i < 3; i++ {
		body := `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}`
		if status, _ := do(t, hs1, "POST", "/v1/release", keyAlpha, body); status != http.StatusOK {
			t.Fatal("release failed")
		}
	}
	_, stats1 := do(t, hs1, "GET", "/v1/stats", keyAlpha, "")
	hs1.Close()

	_, hs2 := openDurable(t, dir, 1, Options{NoiseSeed: 7}, nil)
	_, stats2 := do(t, hs2, "GET", "/v1/stats", keyAlpha, "")
	var s1, s2 statsJSON
	if err := json.Unmarshal(stats1, &s1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(stats2, &s2); err != nil {
		t.Fatal(err)
	}
	// Cache counters legitimately reset (they are not privacy state);
	// everything budget-shaped must match exactly.
	s1.Cache, s2.Cache = nil, nil
	if s1.SpentEps != s2.SpentEps || s1.SpentDelta != s2.SpentDelta ||
		s1.RemainingEps != s2.RemainingEps || s1.RemainingDelta != s2.RemainingDelta ||
		s1.Releases != s2.Releases || len(s1.SpendByEpoch) != len(s2.SpendByEpoch) {
		t.Fatalf("stats diverge across recovery:\n  before: %+v\n  after:  %+v", s1, s2)
	}
}
