package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// RunOptions bound a served socket's patience. Zero values take the
// defaults below; a negative value disables that bound. These exist so
// one stuck client cannot pin a connection (and its in-flight slot)
// forever — the load-shedding bound is only meaningful if slots are
// eventually reclaimed.
type RunOptions struct {
	// ReadHeaderTimeout bounds the wait for a request's header
	// (default 5s) — the cheapest slow-loris defense.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading a full request (default 30s).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing a full response (default 60s).
	WriteTimeout time.Duration
	// IdleTimeout bounds keep-alive idleness (default 120s).
	IdleTimeout time.Duration
	// RequestTimeout bounds each release endpoint's handler time via
	// http.TimeoutHandler (default 30s). The admin advance is exempt —
	// multi-quarter absorption legitimately runs long and every quarter
	// is journaled before it applies.
	RequestTimeout time.Duration
}

func orDefault(v, def time.Duration) time.Duration {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return def
	}
	return v
}

func (ro RunOptions) withDefaults() RunOptions {
	ro.ReadHeaderTimeout = orDefault(ro.ReadHeaderTimeout, 5*time.Second)
	ro.ReadTimeout = orDefault(ro.ReadTimeout, 30*time.Second)
	ro.WriteTimeout = orDefault(ro.WriteTimeout, 60*time.Second)
	ro.IdleTimeout = orDefault(ro.IdleTimeout, 120*time.Second)
	ro.RequestTimeout = orDefault(ro.RequestTimeout, 30*time.Second)
	return ro
}

// Service is a Server bound to a listening socket.
type Service struct {
	srv  *Server
	hs   *http.Server
	ln   net.Listener
	done chan error
}

// Start binds addr (":0" picks a free port — see Addr) and serves in a
// background goroutine until Shutdown or a serve error (watch Done).
func (s *Server) Start(addr string, ro RunOptions) (*Service, error) {
	ro = ro.withDefaults()
	s.reqTimeout = ro.RequestTimeout
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", addr, err)
	}
	svc := &Service{
		srv: s,
		hs: &http.Server{
			Handler:           s.Handler(),
			ReadHeaderTimeout: ro.ReadHeaderTimeout,
			ReadTimeout:       ro.ReadTimeout,
			WriteTimeout:      ro.WriteTimeout,
			IdleTimeout:       ro.IdleTimeout,
		},
		ln:   ln,
		done: make(chan error, 1),
	}
	go func() {
		err := svc.hs.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		svc.done <- err
	}()
	return svc, nil
}

// Addr is the bound listen address (with the real port for ":0").
func (s *Service) Addr() string {
	return s.ln.Addr().String()
}

// Done reports the serve loop's exit: nil after a clean Shutdown, the
// serve error otherwise.
func (s *Service) Done() <-chan error {
	return s.done
}

// Shutdown drains gracefully: the server stops admitting /v1 requests
// (readiness flips immediately, so load balancers stop routing here),
// in-flight requests run to completion — including their response
// bodies — within ctx, and only then is the accounting store compacted
// and closed. A request that was mid-charge can therefore never race
// the store's close, and an admin advance either completes (journaled)
// before the drain or is refused by it, never half-applied.
func (s *Service) Shutdown(ctx context.Context) error {
	s.srv.beginDrain()
	err := s.hs.Shutdown(ctx)
	// A follower's replication loop appends to the store; it must be
	// fully stopped before the store is compacted and closed. Idempotent
	// (a promoted node already stopped it).
	if s.srv.repl != nil {
		s.srv.repl.stopLoop()
	}
	if cerr := s.srv.closePersistent(); err == nil {
		err = cerr
	}
	return err
}
