package server

// Primary-side replication surface: the WAL is the replication stream.
//
// A follower bootstraps from GET /v1/replication/snapshot (the
// compacted state prefix plus the live generation number), then tails
// GET /v1/replication/stream — exact log frames, in order, only ever
// fsync-covered bytes — and applies each record through the same
// applyRecord path recovery uses. Both endpoints authenticate with the
// admin key and carry the requester's fencing term in X-Eree-Term: a
// primary that observes a higher term than its own journals a fence
// record and refuses the write role from then on, so a deposed primary
// that was partitioned away can never double-spend a tenant's budget
// (split-brain safety). POST /v1/admin/promote bumps the term — on a
// follower it adopts the mirrored state and takes the primary role; on
// a fenced ex-primary it clears the fence.

import (
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/wal"
)

// replTermHeader carries the requester's fencing term on replication
// requests. Absent means "no term claim" (curl, scripts); present and
// higher than the serving node's own term means that node is deposed.
const replTermHeader = "X-Eree-Term"

const (
	// maxStreamWait bounds the stream endpoint's long-poll so a hung
	// follower cannot pin a connection past the server's write timeout.
	maxStreamWait = 10 * time.Second
	// maxStreamBytes bounds one stream response's record payload.
	maxStreamBytes = 4 << 20
)

// replSnapshotJSON is the bootstrap payload: decode Snapshot (the
// compacted prefix), then stream generation Gen from wal.StreamStart().
type replSnapshotJSON struct {
	Term           uint64 `json:"term"`
	Gen            uint64 `json:"gen"`
	Snapshot       []byte `json:"snapshot"`
	DurableRecords uint64 `json:"durable_records"`
	Epoch          int    `json:"epoch"`
}

// replStreamJSON is one stream batch: whole log records (base64 on the
// wire), the next cursor offset, and the primary's durable frontier so
// the follower can report its lag. Compacted means the requested
// generation is gone — re-bootstrap from the snapshot.
type replStreamJSON struct {
	Term           uint64   `json:"term"`
	Gen            uint64   `json:"gen"`
	Next           int64    `json:"next"`
	Records        [][]byte `json:"records"`
	DurableRecords uint64   `json:"durable_records"`
	Compacted      bool     `json:"compacted,omitempty"`
}

// replStatusJSON is the operator/harness view of a node's replication
// position. StateDigest is the live divergence digest (hex SHA-256 over
// the canonical state body), directly comparable across nodes.
type replStatusJSON struct {
	Role           string `json:"role"`
	Term           uint64 `json:"term"`
	Fenced         bool   `json:"fenced"`
	Epoch          int    `json:"epoch"`
	Gen            uint64 `json:"gen"`
	DurableRecords uint64 `json:"durable_records"`
	AppliedRecords uint64 `json:"applied_records"`
	LagRecords     int64  `json:"replication_lag_records"`
	StateDigest    string `json:"state_digest,omitempty"`
	Diverged       string `json:"diverged,omitempty"`
	Upstream       string `json:"upstream,omitempty"`
}

// promoteJSON is the /v1/admin/promote response.
type promoteJSON struct {
	Role string `json:"role"`
	Term uint64 `json:"term"`
}

// observeTerm enforces the fencing protocol on a replication request.
// It returns false (response written) when the request was refused. A
// primary seeing a foreign term above its own journals the fence first
// — durable before the refusal is visible — then refuses writes
// forever (writable) until an operator promotes it. Followers don't
// fence on foreign terms: their mirrored log must carry only shipped
// records, and they shed writes by role anyway.
func (s *Server) observeTerm(w http.ResponseWriter, r *http.Request) bool {
	h := r.Header.Get(replTermHeader)
	if h == "" || s.role.Load() == roleFollower {
		return true
	}
	foreign, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "malformed " + replTermHeader + " header"})
		return false
	}
	if foreign <= s.term.Load() {
		return true
	}
	s.fenceMu.Lock()
	defer s.fenceMu.Unlock()
	if foreign > s.term.Load() {
		if s.persist != nil {
			if err := s.persist.LogFence(foreign); err != nil {
				writeJSON(w, http.StatusInternalServerError, errorBody{Error: fmt.Sprintf("recording fence: %v", err)})
				return false
			}
		}
		s.term.Store(foreign)
		s.fenced.Store(true)
	}
	writeJSON(w, http.StatusConflict, errorBody{
		Error: fmt.Sprintf("fenced: observed term %d above this node's own; it no longer holds the primary role", foreign),
	})
	return false
}

// handleReplSnapshot serves GET /v1/replication/snapshot.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.persist == nil {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "replication requires durable state (state_dir)"})
		return
	}
	if !s.observeTerm(w, r) {
		return
	}
	gen, snap, err := s.persist.store.ExportSnapshot()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	_, _, nrec := s.persist.store.Durable()
	writeJSON(w, http.StatusOK, replSnapshotJSON{
		Term:           s.term.Load(),
		Gen:            gen,
		Snapshot:       snap,
		DurableRecords: nrec,
		Epoch:          s.pub.Epoch(),
	})
}

// handleReplStream serves GET /v1/replication/stream?gen=G&offset=O:
// long-polls the durable frontier (wait_ms, capped) and ships whole
// records from the cursor. A compacted generation answers 200 with
// compacted=true rather than an error — re-seeding is the protocol's
// normal catch-up path, not a failure.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	if s.persist == nil {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "replication requires durable state (state_dir)"})
		return
	}
	if !s.observeTerm(w, r) {
		return
	}
	q := r.URL.Query()
	gen, err := strconv.ParseUint(q.Get("gen"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "stream: gen must be an unsigned integer"})
		return
	}
	offset, err := strconv.ParseInt(q.Get("offset"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "stream: offset must be an integer"})
		return
	}
	var wait time.Duration
	if ms := q.Get("wait_ms"); ms != "" {
		n, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "stream: wait_ms must be a non-negative integer"})
			return
		}
		wait = min(time.Duration(n)*time.Millisecond, maxStreamWait)
	}
	recs, next, err := s.persist.store.Tail(gen, offset, wait, maxStreamBytes)
	if errors.Is(err, wal.ErrCompacted) {
		cur, _, _ := s.persist.store.Durable()
		writeJSON(w, http.StatusOK, replStreamJSON{Term: s.term.Load(), Gen: cur, Compacted: true})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("stream: %v", err)})
		return
	}
	_, _, nrec := s.persist.store.Durable()
	writeJSON(w, http.StatusOK, replStreamJSON{
		Term:           s.term.Load(),
		Gen:            gen,
		Next:           next,
		Records:        recs,
		DurableRecords: nrec,
	})
}

// shadowDigest is the primary's live divergence digest: the hash a
// replayer of its log would compute right now.
func (p *Persistence) shadowDigest() (string, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.shadow == nil {
		return "", false
	}
	d := digestOf(p.shadow)
	return hex.EncodeToString(d[:]), true
}

// handleReplStatus serves GET /v1/replication/status.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	out := replStatusJSON{
		Role:   s.roleName(),
		Term:   s.term.Load(),
		Fenced: s.fenced.Load(),
		Epoch:  s.pub.Epoch(),
	}
	if s.persist != nil {
		gen, _, nrec := s.persist.store.Durable()
		out.Gen, out.DurableRecords = gen, nrec
	}
	if s.role.Load() == roleFollower && s.repl != nil {
		s.repl.status(&out)
	} else if s.persist != nil {
		out.AppliedRecords = out.DurableRecords
		if d, ok := s.persist.shadowDigest(); ok {
			out.StateDigest = d
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePromote serves POST /v1/admin/promote: this node takes (or
// retakes) the primary role at a strictly higher term. On a follower
// the replication loop is stopped, the promotion term is journaled,
// and the mirrored state is adopted through the same path boot
// recovery uses — restored accountants, attached journal, fresh
// snapshot. On a primary — fenced or not — the term is bumped and the
// fence cleared. Promotion of a diverged follower is refused: its
// mirror is provably not the primary's history.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.fenceMu.Lock()
	defer s.fenceMu.Unlock()
	if s.role.Load() == roleFollower {
		if err := s.promoteFollower(); err != nil {
			writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf("promote: %v", err)})
			return
		}
	} else {
		newTerm := s.term.Load() + 1
		if s.persist != nil {
			if err := s.persist.LogTerm(newTerm); err != nil {
				writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: fmt.Sprintf("promote: journaling term: %v", err)})
				return
			}
		}
		s.term.Store(newTerm)
		s.fenced.Store(false)
	}
	writeJSON(w, http.StatusOK, promoteJSON{Role: s.roleName(), Term: s.term.Load()})
}
