package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
)

// BenchmarkServeMarginal measures the full single-goroutine handler
// path for a warm-cache workload-1 release: decode, auth, budget
// admission, cached truth lookup, per-cell noise, JSON render. No
// socket — the network is not the subsystem under test. Gated in CI
// against BENCH_serve.json.
func BenchmarkServeMarginal(b *testing.B) {
	cfg := lodes.TestConfig()
	cfg.NumEstablishments = 500
	data := lodes.MustGenerate(cfg, dist.NewStreamFromSeed(1))
	acct, err := privacy.NewAccountant(privacy.WeakEREE, 0.1, 1e18, 0.999999)
	if err != nil {
		b.Fatal(err)
	}
	reg := privacy.NewRegistry()
	if _, err := reg.Register("bench", "bench-key", acct); err != nil {
		b.Fatal(err)
	}
	h := New(core.NewPublisher(data), reg, Options{NoiseSeed: 7}).Handler()

	// Warm the truth cache so steady-state serving is what's measured.
	warm := httptest.NewRequest("POST", "/v1/release", strings.NewReader(
		`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":0}`))
	warm.Header.Set(apiKeyHeader, "bench-key")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup = %d: %s", rec.Code, rec.Body.Bytes())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(
			`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":%d}`,
			i%maxSeq)
		req := httptest.NewRequest("POST", "/v1/release", strings.NewReader(body))
		req.Header.Set(apiKeyHeader, "bench-key")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("release = %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
}

// BenchmarkServeMarginalDurable is BenchmarkServeMarginal with the
// write-ahead accounting store on: every release fsyncs its spend
// record before responding. The gap between the two benchmarks is the
// durability tax — group commit amortizes it under concurrency, but
// this single-goroutine run pays one fsync per release, the honest
// worst case. Gated in CI against BENCH_serve.json.
func BenchmarkServeMarginalDurable(b *testing.B) {
	cfg := lodes.TestConfig()
	cfg.NumEstablishments = 500
	data := lodes.MustGenerate(cfg, dist.NewStreamFromSeed(1))
	acct, err := privacy.NewAccountant(privacy.WeakEREE, 0.1, 1e18, 0.999999)
	if err != nil {
		b.Fatal(err)
	}
	reg := privacy.NewRegistry()
	if _, err := reg.Register("bench", "bench-key", acct); err != nil {
		b.Fatal(err)
	}
	srv, err := Open(core.NewPublisher(data), reg, Options{NoiseSeed: 7, StateDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.closePersistent()
	h := srv.Handler()

	warm := httptest.NewRequest("POST", "/v1/release", strings.NewReader(
		`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":0}`))
	warm.Header.Set(apiKeyHeader, "bench-key")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup = %d: %s", rec.Code, rec.Body.Bytes())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(
			`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":%d}`,
			1+i%(maxSeq-1))
		req := httptest.NewRequest("POST", "/v1/release", strings.NewReader(body))
		req.Header.Set(apiKeyHeader, "bench-key")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("release = %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
}
