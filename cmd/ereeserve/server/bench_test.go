package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
	"repro/internal/wal"
)

// BenchmarkServeMarginal measures the full single-goroutine handler
// path for a warm-cache workload-1 release: decode, auth, budget
// admission, cached truth lookup, per-cell noise, JSON render. No
// socket — the network is not the subsystem under test. Gated in CI
// against BENCH_serve.json.
func BenchmarkServeMarginal(b *testing.B) {
	cfg := lodes.TestConfig()
	cfg.NumEstablishments = 500
	data := lodes.MustGenerate(cfg, dist.NewStreamFromSeed(1))
	acct, err := privacy.NewAccountant(privacy.WeakEREE, 0.1, 1e18, 0.999999)
	if err != nil {
		b.Fatal(err)
	}
	reg := privacy.NewRegistry()
	if _, err := reg.Register("bench", "bench-key", acct); err != nil {
		b.Fatal(err)
	}
	h := New(core.NewPublisher(data), reg, Options{NoiseSeed: 7}).Handler()

	// Warm the truth cache so steady-state serving is what's measured.
	warm := httptest.NewRequest("POST", "/v1/release", strings.NewReader(
		`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":0}`))
	warm.Header.Set(apiKeyHeader, "bench-key")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup = %d: %s", rec.Code, rec.Body.Bytes())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(
			`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":%d}`,
			i%maxSeq)
		req := httptest.NewRequest("POST", "/v1/release", strings.NewReader(body))
		req.Header.Set(apiKeyHeader, "bench-key")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("release = %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
}

// BenchmarkServeMarginalDurable is BenchmarkServeMarginal with the
// write-ahead accounting store on: every release fsyncs its spend
// record before responding. The gap between the two benchmarks is the
// durability tax — group commit amortizes it under concurrency, but
// this single-goroutine run pays one fsync per release, the honest
// worst case. Gated in CI against BENCH_serve.json.
func BenchmarkServeMarginalDurable(b *testing.B) {
	cfg := lodes.TestConfig()
	cfg.NumEstablishments = 500
	data := lodes.MustGenerate(cfg, dist.NewStreamFromSeed(1))
	acct, err := privacy.NewAccountant(privacy.WeakEREE, 0.1, 1e18, 0.999999)
	if err != nil {
		b.Fatal(err)
	}
	reg := privacy.NewRegistry()
	if _, err := reg.Register("bench", "bench-key", acct); err != nil {
		b.Fatal(err)
	}
	srv, err := Open(core.NewPublisher(data), reg, Options{NoiseSeed: 7, StateDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.closePersistent()
	h := srv.Handler()

	warm := httptest.NewRequest("POST", "/v1/release", strings.NewReader(
		`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":0}`))
	warm.Header.Set(apiKeyHeader, "bench-key")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup = %d: %s", rec.Code, rec.Body.Bytes())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(
			`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":%d}`,
			1+i%(maxSeq-1))
		req := httptest.NewRequest("POST", "/v1/release", strings.NewReader(body))
		req.Header.Set(apiKeyHeader, "bench-key")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("release = %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
}

// BenchmarkFollowerApply measures the follower's catch-up path per
// shipped record: stream-sized batches appended to the local WAL
// (durable before observed), then applied to the mirrored state
// through applyRecord — the identical code recovery runs, digest
// verification included. The record stream is real: spend records a
// durable primary journaled serving the workload-1 marginal.
// BENCH_serve.json's replication block records the result.
func BenchmarkFollowerApply(b *testing.B) {
	cfg := lodes.TestConfig()
	cfg.NumEstablishments = 500
	data := lodes.MustGenerate(cfg, dist.NewStreamFromSeed(1))
	acct, err := privacy.NewAccountant(privacy.WeakEREE, 0.1, 1e18, 0.999999)
	if err != nil {
		b.Fatal(err)
	}
	reg := privacy.NewRegistry()
	if _, err := reg.Register("bench", "bench-key", acct); err != nil {
		b.Fatal(err)
	}
	srv, err := Open(core.NewPublisher(data), reg, Options{NoiseSeed: 7, StateDir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.closePersistent()
	gen, snap, err := srv.persist.store.ExportSnapshot()
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	for i := 0; i < 512; i++ {
		body := fmt.Sprintf(
			`{"attrs":["place","industry","ownership"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":%d}`,
			1+i%(maxSeq-1))
		req := httptest.NewRequest("POST", "/v1/release", strings.NewReader(body))
		req.Header.Set(apiKeyHeader, "bench-key")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("release = %d: %s", rec.Code, rec.Body.Bytes())
		}
	}
	recs, _, err := srv.persist.store.ReadFrom(gen, wal.StreamStart(), 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	if len(recs) < 512 {
		b.Fatalf("primary journaled %d records, want >= 512", len(recs))
	}

	// The mirror: its own WAL (one fsync per stream batch) and the
	// decoded snapshot the stream starts from, reset per pass so every
	// digest record verifies at the position it was emitted.
	mirror, _, err := wal.Open(b.TempDir(), wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer mirror.Close()
	const batch = 64

	b.ReportAllocs()
	b.ResetTimer()
	for applied := 0; applied < b.N; {
		st, err := decodeSnapshot(snap)
		if err != nil {
			b.Fatal(err)
		}
		for off := 0; off < len(recs) && applied < b.N; off += batch {
			end := min(off+batch, len(recs))
			if err := mirror.AppendBatch(recs[off:end]); err != nil {
				b.Fatal(err)
			}
			for _, rec := range recs[off:end] {
				if err := st.applyRecord(rec); err != nil {
					b.Fatal(err)
				}
				applied++
			}
		}
	}
}
