package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"

	"repro/internal/core"
)

// Wire-request decoding and validation. Everything here runs before the
// publisher or any accountant is touched: a request that fails to
// decode is rejected with a 4xx, spends no budget, and — fuzz-tested —
// can never panic the server. Deeper semantic failures (parameters
// outside a mechanism's validity region, unknown attributes for this
// schema) are left to internal/core's typed sentinels, which the
// handler layer maps to status codes the same way.

// errBadBody classifies transport-level decode failures (malformed
// JSON, unknown fields, out-of-range values) as 400s. errBodyTooLarge
// singles out bodies that blew the http.MaxBytesReader cap, which get
// the conventional 413 instead.
var (
	errBadBody      = errors.New("bad request body")
	errBodyTooLarge = errors.New("request body too large")
)

// Hard caps on request shape. They bound work before any of it is
// done: an index scan is O(rows) regardless, but attrs bounds the
// cell-space (domain sizes multiply) and batch bounds the fan-out.
const (
	maxAttrsPerQuery = 8
	maxBatchRequests = 64
	maxCellValues    = 8
	// maxBodyBytes bounds request bodies via http.MaxBytesReader; a
	// batch of 64 fully-specified requests fits comfortably.
	maxBodyBytes = 1 << 20
	// maxSeq keeps explicit sequence numbers inside SplitIndex's int
	// domain on every platform.
	maxSeq = math.MaxInt32
)

// wireRequest is one marginal-release request as it appears on the
// wire, inside /v1/release, /v1/batch and (with Values) /v1/cell.
type wireRequest struct {
	// Attrs are the marginal's attribute names, in release order.
	Attrs []string `json:"attrs"`
	// Mechanism is the release algorithm's name (core.ParseMechanismKind).
	Mechanism string  `json:"mechanism"`
	Alpha     float64 `json:"alpha"`
	Eps       float64 `json:"eps"`
	Delta     float64 `json:"delta,omitempty"`
	Theta     int     `json:"theta,omitempty"`
	// Values selects one cell (only on /v1/cell).
	Values []string `json:"values,omitempty"`
}

// releaseBody is the /v1/release and /v1/cell body: one request plus an
// optional explicit sequence number.
type releaseBody struct {
	wireRequest
	// Seq, if set, names the noise stream for this release explicitly:
	// the response is then a pure function of (server noise seed,
	// tenant, seq, request, dataset epoch) regardless of what other
	// traffic the server is carrying. When omitted the server assigns
	// the tenant's next sequence number. Reusing a seq only replays
	// noise for a bit-identical request on the same epoch — the stream
	// is also derived from the request's content digest and the pinned
	// epoch, so two *different* requests under one seq (or one request
	// across an epoch advance) draw independent noise and cannot be
	// differenced to cancel it.
	Seq *int64 `json:"seq,omitempty"`
}

// batchBody is the /v1/batch body: many requests released as one
// atomically-accounted batch under a single sequence number.
type batchBody struct {
	Requests []wireRequest `json:"requests"`
	Seq      *int64        `json:"seq,omitempty"`
}

// decodeStrict unmarshals JSON rejecting unknown fields and trailing
// garbage, so a typo'd field name fails loudly instead of silently
// releasing under default parameters.
func decodeStrict(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: %v", classifyDecodeErr(err), err)
	}
	// A second Decode must see EOF: two JSON documents in one body is a
	// malformed request, not a request plus ignored noise.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		if sentinel := classifyDecodeErr(err); sentinel == errBodyTooLarge {
			return fmt.Errorf("%w: %v", sentinel, err)
		}
		return fmt.Errorf("%w: trailing data after JSON body", errBadBody)
	}
	return nil
}

// classifyDecodeErr separates a body that exceeded the MaxBytesReader
// cap (413) from every other decode failure (400).
func classifyDecodeErr(err error) error {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return errBodyTooLarge
	}
	return errBadBody
}

// validateWire bounds and sanity-checks one wire request, returning the
// compiled core request. Schema-dependent checks (do these attributes
// exist?) are core's business; this layer only enforces shape.
func validateWire(w wireRequest, allowValues bool) (core.Request, error) {
	if len(w.Attrs) == 0 {
		return core.Request{}, fmt.Errorf("%w: attrs must be non-empty", errBadBody)
	}
	if len(w.Attrs) > maxAttrsPerQuery {
		return core.Request{}, fmt.Errorf("%w: %d attrs exceeds the limit of %d", errBadBody, len(w.Attrs), maxAttrsPerQuery)
	}
	for _, a := range w.Attrs {
		if a == "" {
			return core.Request{}, fmt.Errorf("%w: empty attribute name", errBadBody)
		}
	}
	if !allowValues && len(w.Values) > 0 {
		return core.Request{}, fmt.Errorf("%w: values is only valid on /v1/cell", errBadBody)
	}
	if len(w.Values) > maxCellValues {
		return core.Request{}, fmt.Errorf("%w: %d values exceeds the limit of %d", errBadBody, len(w.Values), maxCellValues)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{{"alpha", w.Alpha}, {"eps", w.Eps}, {"delta", w.Delta}} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return core.Request{}, fmt.Errorf("%w: %s must be finite", errBadBody, f.name)
		}
	}
	kind, err := core.ParseMechanismKind(w.Mechanism)
	if err != nil {
		// Carries core.ErrInvalidRequest; the handler maps it to 400.
		return core.Request{}, err
	}
	return core.Request{
		Attrs:     w.Attrs,
		Mechanism: kind,
		Alpha:     w.Alpha,
		Eps:       w.Eps,
		Delta:     w.Delta,
		Theta:     w.Theta,
	}, nil
}

// validateSeq bounds an explicit sequence number.
func validateSeq(seq *int64) (int64, bool, error) {
	if seq == nil {
		return 0, false, nil
	}
	if *seq < 0 || *seq > maxSeq {
		return 0, false, fmt.Errorf("%w: seq must be in [0, %d]", errBadBody, int64(maxSeq))
	}
	return *seq, true, nil
}

// decodeRelease parses and validates a /v1/release or /v1/cell body.
func decodeRelease(r io.Reader, allowValues bool) (core.Request, []string, *int64, error) {
	var body releaseBody
	if err := decodeStrict(r, &body); err != nil {
		return core.Request{}, nil, nil, err
	}
	req, err := validateWire(body.wireRequest, allowValues)
	if err != nil {
		return core.Request{}, nil, nil, err
	}
	if _, _, err := validateSeq(body.Seq); err != nil {
		return core.Request{}, nil, nil, err
	}
	return req, body.Values, body.Seq, nil
}

// decodeBatch parses and validates a /v1/batch body.
func decodeBatch(r io.Reader) ([]core.Request, *int64, error) {
	var body batchBody
	if err := decodeStrict(r, &body); err != nil {
		return nil, nil, err
	}
	if len(body.Requests) == 0 {
		return nil, nil, fmt.Errorf("%w: requests must be non-empty", errBadBody)
	}
	if len(body.Requests) > maxBatchRequests {
		return nil, nil, fmt.Errorf("%w: %d requests exceeds the batch limit of %d", errBadBody, len(body.Requests), maxBatchRequests)
	}
	reqs := make([]core.Request, len(body.Requests))
	for i, w := range body.Requests {
		req, err := validateWire(w, false)
		if err != nil {
			return nil, nil, fmt.Errorf("request %d: %w", i, err)
		}
		reqs[i] = req
	}
	if _, _, err := validateSeq(body.Seq); err != nil {
		return nil, nil, err
	}
	return reqs, body.Seq, nil
}

// advanceBody is the /v1/admin/advance body.
type advanceBody struct {
	// Quarters is how many generated quarterly deltas to absorb.
	Quarters int `json:"quarters"`
	// Seed overrides the config's delta_seed root for this advance. The
	// root is indexed by the *absolute* quarter count: the q-th quarter
	// absorbed over the server's lifetime draws from root+q, so a retry
	// after a partial failure continues the same delta sequence instead
	// of regenerating already-absorbed quarters over the advanced data.
	Seed *int64 `json:"seed,omitempty"`
}

// maxAdvanceQuarters bounds one admin call; each quarter is a full
// ApplyDelta + MergeIndex pass.
const maxAdvanceQuarters = 16

func decodeAdvance(r io.Reader) (int, *int64, error) {
	var body advanceBody
	if err := decodeStrict(r, &body); err != nil {
		return 0, nil, err
	}
	if body.Quarters < 1 || body.Quarters > maxAdvanceQuarters {
		return 0, nil, fmt.Errorf("%w: quarters must be in [1, %d]", errBadBody, maxAdvanceQuarters)
	}
	return body.Quarters, body.Seed, nil
}
