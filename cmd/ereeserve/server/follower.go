package server

// Follower mode: a live, bit-identical mirror of a primary's durable
// state, maintained by tailing the primary's WAL and applying every
// shipped record through applyRecord — the identical code path boot
// recovery uses, so a mirror is correct exactly when recovery is.
//
// The loop's contract, in order, for every batch: (1) append the
// shipped records to the local WAL — byte-identical frames, durable
// before anything observes them — then (2) apply each to the mirrored
// state, advancing the local publisher inline on dataset-advance
// records. Shipped digest records are verified by applyRecord at the
// same log positions the primary computed them, so a mirror that has
// diverged halts loudly (stops replicating, stops serving, refuses
// promotion) instead of serving or inheriting a forked ledger. A
// follower that falls behind a compaction re-seeds from the snapshot
// endpoint and resumes — catch-up is part of the protocol, not an
// operator event.

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/cmd/ereeserve/config"
	"repro/internal/dist"
	"repro/internal/lodes"
	"repro/internal/privacy"
	"repro/internal/wal"
)

// replFatalError marks a replication failure that retrying cannot fix:
// a record the mirror refuses, a digest mismatch, a forked dataset
// lineage. The loop halts on it; transport errors just back off.
type replFatalError struct{ err error }

func (e *replFatalError) Error() string { return e.err.Error() }
func (e *replFatalError) Unwrap() error { return e.err }

func fatalRepl(err error) error { return &replFatalError{err} }

// replState is a follower's replication machinery: the upstream
// cursor, the mirrored state, and the streaming loop's lifecycle.
type replState struct {
	upstream string
	adminKey string
	client   *http.Client
	poll     time.Duration

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu     sync.Mutex
	fState *persistentState
	// synced means (gen, offset) is a valid cursor into the primary's
	// live generation; false forces a snapshot bootstrap.
	synced bool
	gen    uint64
	offset int64
	// applied counts records applied within gen; upstreamDurable is the
	// primary's durable record count in gen as of the last response —
	// their difference is the replication lag.
	applied         uint64
	upstreamDurable uint64
	totalApplied    uint64
	diverged        string
	lastErr         string
}

// openFollower boots s as a follower of opts.ReplicateFrom: recover
// the local mirror (so reads serve immediately after a restart), then
// stream. Open returns without waiting for the primary — /readyz turns
// ready at the first successful bootstrap, and promotion works even
// while catching up (the mirror is whatever has been made durable).
func openFollower(s *Server, opts Options) (*Server, error) {
	if opts.AdminKey == "" {
		return nil, fmt.Errorf("server: follower mode requires the admin key (replication endpoints authenticate with it)")
	}
	pers, st, err := openState(opts.StateDir, opts.ReplayWindow)
	if err != nil {
		return nil, err
	}
	s.persist = pers
	s.role.Store(roleFollower)
	if st.Term > 0 {
		s.term.Store(st.Term)
	}
	poll := opts.ReplPoll
	if poll <= 0 {
		poll = defaultReplPoll
	}
	rs := &replState{
		upstream: strings.TrimRight(opts.ReplicateFrom, "/"),
		adminKey: opts.AdminKey,
		client:   &http.Client{Timeout: maxStreamWait + 15*time.Second},
		poll:     poll,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		fState:   st,
	}
	s.repl = rs
	if err := rs.advancePublisherLocked(s); err != nil {
		pers.store.Close()
		return nil, err
	}
	go rs.run(s)
	return s, nil
}

// advancePublisherLocked replays the mirrored dataset lineage the
// publisher has not yet absorbed (exclusive access to fState required:
// boot, or under rs.mu). Generation and Advance are deterministic, so
// the follower's snapshots are the primary's.
func (rs *replState) advancePublisherLocked(s *Server) error {
	for q := s.pub.Epoch(); q < len(rs.fState.QuarterSeeds); q++ {
		seed := rs.fState.QuarterSeeds[q]
		dl, err := lodes.GenerateDelta(s.pub.Dataset(), s.deltaCfg, dist.NewStreamFromSeed(seed))
		if err != nil {
			return fmt.Errorf("server: follower quarter %d: %w", q, err)
		}
		if err := s.pub.Advance(dl); err != nil {
			return fmt.Errorf("server: follower quarter %d: %w", q, err)
		}
	}
	return nil
}

// run is the replication loop: bootstrap when the cursor is invalid,
// otherwise tail; back off rs.poll on transport errors and idle polls,
// halt permanently on divergence.
func (rs *replState) run(s *Server) {
	defer close(rs.done)
	for {
		select {
		case <-rs.stop:
			return
		default:
		}
		progressed, err := rs.syncOnce(s)
		if err != nil {
			var fatal *replFatalError
			if errors.As(err, &fatal) {
				rs.markDiverged(s, err.Error())
				log.Printf("ereeserve follower: DIVERGED from %s, halting replication: %v", rs.upstream, err)
				return
			}
			rs.noteErr(err)
		}
		if progressed && err == nil {
			continue
		}
		select {
		case <-rs.stop:
			return
		case <-time.After(rs.poll):
		}
	}
}

func (rs *replState) syncOnce(s *Server) (bool, error) {
	rs.mu.Lock()
	synced := rs.synced
	rs.mu.Unlock()
	if !synced {
		if err := rs.bootstrap(s); err != nil {
			return false, err
		}
		s.state.CompareAndSwap(stateStarting, stateReady)
		return true, nil
	}
	return rs.streamOnce(s)
}

// bootstrap (re-)seeds the mirror from the primary's compacted
// snapshot: decode it, verify the dataset lineage extends what the
// local publisher already absorbed (a publisher cannot rewind — a
// shorter or forked lineage is divergence), install the snapshot bytes
// into the local WAL so the next restart recovers from the same prefix
// the primary's would, and point the cursor at the generation's start.
func (rs *replState) bootstrap(s *Server) error {
	var snap replSnapshotJSON
	if err := rs.get(s, "/v1/replication/snapshot", nil, &snap); err != nil {
		return err
	}
	next := newPersistentState()
	next.window = s.replayWindow
	if snap.Snapshot != nil {
		st, err := decodeSnapshot(snap.Snapshot)
		if err != nil {
			return fatalRepl(fmt.Errorf("primary snapshot undecodable: %w", err))
		}
		st.window = s.replayWindow
		next = st
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if err := rs.checkLineageLocked(s, next); err != nil {
		return fatalRepl(err)
	}
	if snap.Snapshot != nil {
		if err := s.persist.store.Snapshot(snap.Snapshot); err != nil {
			return fatalRepl(fmt.Errorf("installing primary snapshot: %w", err))
		}
	}
	rs.fState = next
	if err := rs.advancePublisherLocked(s); err != nil {
		return fatalRepl(err)
	}
	if next.Term > s.term.Load() {
		s.term.Store(next.Term)
	}
	rs.gen = snap.Gen
	rs.offset = wal.StreamStart()
	rs.applied = 0
	rs.upstreamDurable = snap.DurableRecords
	rs.synced = true
	rs.lastErr = ""
	return nil
}

// checkLineageLocked verifies the incoming state's dataset lineage is
// an extension of what this node's publisher has already absorbed.
func (rs *replState) checkLineageLocked(s *Server, next *persistentState) error {
	n := s.pub.Epoch()
	if len(next.QuarterSeeds) < n {
		return fmt.Errorf("primary lineage has %d quarters but the local publisher is at epoch %d: mirrors have forked", len(next.QuarterSeeds), n)
	}
	for i := 0; i < n; i++ {
		if next.QuarterSeeds[i] != rs.fState.QuarterSeeds[i] {
			return fmt.Errorf("dataset lineage fork at quarter %d: primary seed %d, local %d", i, next.QuarterSeeds[i], rs.fState.QuarterSeeds[i])
		}
	}
	return nil
}

// streamOnce tails one batch from the cursor and mirrors it: local WAL
// append first (durable before observed), then state application.
func (rs *replState) streamOnce(s *Server) (bool, error) {
	rs.mu.Lock()
	gen, off := rs.gen, rs.offset
	rs.mu.Unlock()
	q := url.Values{}
	q.Set("gen", strconv.FormatUint(gen, 10))
	q.Set("offset", strconv.FormatInt(off, 10))
	q.Set("wait_ms", strconv.FormatInt(int64(rs.poll/time.Millisecond)+1, 10))
	var resp replStreamJSON
	if err := rs.get(s, "/v1/replication/stream", q, &resp); err != nil {
		return false, err
	}
	if resp.Compacted {
		rs.mu.Lock()
		rs.synced = false
		rs.mu.Unlock()
		return true, nil
	}
	if len(resp.Records) == 0 {
		rs.mu.Lock()
		rs.upstreamDurable = resp.DurableRecords
		rs.mu.Unlock()
		return false, nil
	}
	if err := s.persist.store.AppendBatch(resp.Records); err != nil {
		return false, fatalRepl(fmt.Errorf("mirroring records to the local log: %w", err))
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, rec := range resp.Records {
		if err := rs.applyLocked(s, rec); err != nil {
			return false, fatalRepl(err)
		}
	}
	rs.offset = resp.Next
	rs.upstreamDurable = resp.DurableRecords
	rs.lastErr = ""
	return true, nil
}

// applyLocked applies one shipped record to the mirrored state —
// applyRecord verifies digest records in passing — and mirrors its
// side effects: dataset advances move the publisher, term records move
// the node's term.
func (rs *replState) applyLocked(s *Server, rec []byte) error {
	if err := rs.fState.applyRecord(rec); err != nil {
		return fmt.Errorf("applying shipped record: %w", err)
	}
	rs.applied++
	rs.totalApplied++
	if len(rec) > 0 {
		switch rec[0] {
		case recAdvanceDataset:
			if err := rs.advancePublisherLocked(s); err != nil {
				return err
			}
		case recTerm, recFence:
			if t := rs.fState.Term; t > s.term.Load() {
				s.term.Store(t)
			}
		}
	}
	return nil
}

// get performs one authenticated replication request against the
// upstream, decoding a 200 JSON body into out.
func (rs *replState) get(s *Server, path string, q url.Values, out any) error {
	u := rs.upstream + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	req.Header.Set(apiKeyHeader, rs.adminKey)
	req.Header.Set(replTermHeader, strconv.FormatUint(s.term.Load(), 10))
	resp, err := rs.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("primary %s: %s: %s", path, resp.Status, bytes.TrimSpace(body))
	}
	return json.Unmarshal(body, out)
}

// markDiverged halts the node: replication stops (the loop exits after
// this), /readyz reports diverged, the /v1 endpoints shed, and
// promotion is refused. The forked state stays on disk for forensics.
func (rs *replState) markDiverged(s *Server, msg string) {
	rs.mu.Lock()
	rs.diverged = msg
	rs.synced = false
	rs.mu.Unlock()
	s.state.Store(stateDiverged)
}

func (rs *replState) noteErr(err error) {
	rs.mu.Lock()
	rs.lastErr = err.Error()
	rs.mu.Unlock()
}

// stopLoop stops the replication loop and waits for it to exit.
// Idempotent; safe after the loop already halted itself.
func (rs *replState) stopLoop() {
	rs.stopOnce.Do(func() { close(rs.stop) })
	<-rs.done
}

// lag is the follower's replication lag in records within the current
// generation (0 while unsynced — there is no frontier to lag).
func (rs *replState) lag() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	l := int64(rs.upstreamDurable) - int64(rs.applied)
	if l < 0 || !rs.synced {
		return 0
	}
	return l
}

// status fills the follower half of a replication status response.
func (rs *replState) status(out *replStatusJSON) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out.Upstream = rs.upstream
	out.Gen = rs.gen
	out.AppliedRecords = rs.applied
	if l := int64(rs.upstreamDurable) - int64(rs.applied); l > 0 && rs.synced {
		out.LagRecords = l
	}
	d := digestOf(rs.fState)
	out.StateDigest = hex.EncodeToString(d[:])
	out.Diverged = rs.diverged
}

// encodeState snapshots the mirrored state (shutdown compaction).
func (rs *replState) encodeState() []byte {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return encodeSnapshot(rs.fState)
}

// promoteFollower is the follower half of /v1/admin/promote (fenceMu
// held): stop mirroring, journal a strictly higher term, and adopt the
// mirrored state exactly as boot recovery would — restored
// accountants, attached journal, compacted snapshot. The promoted node
// is a primary whose history is the primary's history.
func (s *Server) promoteFollower() error {
	rs := s.repl
	rs.stopLoop()
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.diverged != "" {
		return fmt.Errorf("refusing to promote a diverged follower: %s", rs.diverged)
	}
	st := rs.fState
	newTerm := st.Term + 1
	if newTerm < 2 {
		newTerm = 2
	}
	var w recWriter
	w.u8(recTerm)
	w.u64(newTerm)
	if err := s.persist.append(w.b); err != nil {
		return fmt.Errorf("journaling promotion term: %w", err)
	}
	if err := st.applyRecord(w.b); err != nil {
		return fmt.Errorf("applying promotion term: %w", err)
	}
	s.term.Store(newTerm)
	s.fenced.Store(false)
	if err := s.adopt(s.persist, st); err != nil {
		return fmt.Errorf("adopting mirrored state: %w", err)
	}
	s.role.Store(rolePrimary)
	s.state.Store(stateReady)
	return nil
}

// followerStats renders /v1/stats from the mirrored state: a follower
// has no live accountants (charges happen on the primary), so the
// tenant's position is read from the mirror. The publisher's cache
// stats are this node's own — followers serve their own reads.
func (s *Server) followerStats(t *privacy.Tenant) statsJSON {
	rs := s.repl
	rs.mu.Lock()
	defer rs.mu.Unlock()
	def, alpha := t.Acct.Def()
	out := statsJSON{
		Tenant:     t.Name,
		Definition: config.DefinitionToken(def),
		Alpha:      alpha,
		Epoch:      s.pub.Epoch(),
	}
	if ts, ok := rs.fState.Tenants[t.Name]; ok {
		out.SpentEps = ts.SpentEps
		out.SpentDelta = ts.SpentDelta
		out.Releases = ts.Releases
		out.RemainingEps = max(ts.BudgetEps-ts.SpentEps, 0)
		out.RemainingDelta = max(ts.BudgetDelta-ts.SpentDelta, 0)
		out.SpendByEpoch = make([]epochSpendJSON, len(ts.Ledger))
		for i, e := range ts.Ledger {
			out.SpendByEpoch[i] = epochSpendJSON{Epoch: e.Epoch, Eps: e.Eps, Delta: e.Delta, Releases: e.Releases}
		}
		out.ReplayCache = &replayCacheJSON{Capacity: rs.fState.windowSize(), Size: len(ts.Recent)}
	} else {
		beps, bdelta := t.Acct.Budget()
		out.RemainingEps, out.RemainingDelta = beps, bdelta
		out.SpendByEpoch = []epochSpendJSON{}
		out.ReplayCache = &replayCacheJSON{Capacity: rs.fState.windowSize()}
	}
	for _, cs := range s.pub.CacheStatsByEpoch() {
		out.Cache = append(out.Cache, cacheStatsJSON{Epoch: cs.Epoch, Hits: cs.Hits, Misses: cs.Misses, Patches: cs.Patches, Evictions: cs.Evictions})
	}
	return out
}
