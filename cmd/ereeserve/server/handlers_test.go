package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestStatusMapping drives every rejection path through real HTTP and
// pins the sentinel-to-status contract: transport/shape failures and
// invalid mechanism parameters are 400, unknown schema objects are 404,
// credentials are 401, method mismatches 405 — and none of them spends
// a microcent of budget.
func TestStatusMapping(t *testing.T) {
	srv, hs := newTestServer(t, 1, Options{NoiseSeed: 7, AdminKey: keyAdmin}, nil)
	tn, ok := srv.reg.Tenant("alpha")
	if !ok {
		t.Fatal("tenant alpha not registered")
	}

	valid := `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}`
	cases := []struct {
		name   string
		method string
		path   string
		key    string
		body   string
		want   int
	}{
		{"malformed JSON", "POST", "/v1/release", keyAlpha, `{"attrs":`, 400},
		{"unknown field", "POST", "/v1/release", keyAlpha, `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"bogus":1}`, 400},
		{"trailing data", "POST", "/v1/release", keyAlpha, valid + `{"again":true}`, 400},
		{"empty attrs", "POST", "/v1/release", keyAlpha, `{"attrs":[],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}`, 400},
		{"too many attrs", "POST", "/v1/release", keyAlpha, `{"attrs":["a","b","c","d","e","f","g","h","i"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}`, 400},
		{"empty attr name", "POST", "/v1/release", keyAlpha, `{"attrs":[""],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}`, 400},
		{"values on /v1/release", "POST", "/v1/release", keyAlpha, `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"values":["44-Retail"]}`, 400},
		{"unknown mechanism", "POST", "/v1/release", keyAlpha, `{"attrs":["industry"],"mechanism":"magic","alpha":0.1,"eps":1}`, 400},
		{"negative eps", "POST", "/v1/release", keyAlpha, `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":-1}`, 400},
		{"zero alpha", "POST", "/v1/release", keyAlpha, `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0,"eps":1}`, 400},
		{"smooth-laplace without delta", "POST", "/v1/release", keyAlpha, `{"attrs":["industry"],"mechanism":"smooth-laplace","alpha":0.1,"eps":1}`, 400},
		{"negative seq", "POST", "/v1/release", keyAlpha, `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"seq":-1}`, 400},
		{"huge seq", "POST", "/v1/release", keyAlpha, `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"seq":2147483648}`, 400},
		{"unknown attribute", "POST", "/v1/release", keyAlpha, `{"attrs":["favorite_color"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}`, 404},
		{"duplicate attribute", "POST", "/v1/release", keyAlpha, `{"attrs":["industry","industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}`, 404},
		{"empty batch", "POST", "/v1/batch", keyAlpha, `{"requests":[]}`, 400},
		{"oversized batch", "POST", "/v1/batch", keyAlpha, `{"requests":[` + strings.Repeat(valid+",", 64) + valid + `]}`, 400},
		{"batch with bad member", "POST", "/v1/batch", keyAlpha, `{"requests":[` + valid + `,{"attrs":["industry"],"mechanism":"magic","alpha":0.1,"eps":1}]}`, 400},
		{"cell with unknown value", "POST", "/v1/cell", keyAlpha, `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"values":["99-Nonsense"]}`, 404},
		{"cell with wrong arity", "POST", "/v1/cell", keyAlpha, `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1,"values":["44-Retail","Private"]}`, 404},
		{"cell under truncated-laplace", "POST", "/v1/cell", keyAlpha, `{"attrs":["industry"],"mechanism":"truncated-laplace","alpha":0.1,"eps":1,"theta":10,"values":["44-Retail"]}`, 400},
		{"oversized body", "POST", "/v1/release", keyAlpha, `{"attrs":["` + strings.Repeat("x", maxBodyBytes) + `"]}`, 413},
		{"oversized batch body", "POST", "/v1/batch", keyAlpha, `{"requests":[{"attrs":["` + strings.Repeat("y", maxBodyBytes) + `"]}]}`, 413},
		{"missing API key", "POST", "/v1/release", "", valid, 401},
		{"unknown API key", "POST", "/v1/release", "key-of-nobody", valid, 401},
		{"tenant key on admin endpoint", "POST", "/v1/admin/advance", keyAlpha, `{"quarters":1}`, 401},
		{"advance zero quarters", "POST", "/v1/admin/advance", keyAdmin, `{"quarters":0}`, 400},
		{"advance too many quarters", "POST", "/v1/admin/advance", keyAdmin, `{"quarters":17}`, 400},
		{"GET on POST endpoint", "GET", "/v1/release", keyAlpha, "", 405},
		{"unknown path", "POST", "/v1/nope", keyAlpha, valid, 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, hs, tc.method, tc.path, tc.key, tc.body)
			if status != tc.want {
				t.Fatalf("%s %s = %d, want %d: %s", tc.method, tc.path, status, tc.want, body)
			}
			if spent := tn.Acct.Spent(); spent.Eps != 0 || spent.Delta != 0 {
				t.Fatalf("rejected request spent budget: %+v", spent)
			}
		})
	}
}

// TestBudgetStatusAndStats exhausts a small budget over the wire and
// checks the 429 shape and the stats endpoint's view of the spend.
func TestBudgetStatusAndStats(t *testing.T) {
	tenants := []tenantSpec{{name: "alpha", key: keyAlpha, eps: 2.5, delta: 0.5}}
	_, hs := newTestServer(t, 1, Options{NoiseSeed: 7}, tenants)

	body := `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":2,"seq":0}`
	if status, raw := do(t, hs, "POST", "/v1/release", keyAlpha, body); status != http.StatusOK {
		t.Fatalf("first release = %d: %s", status, raw)
	}
	status, raw := do(t, hs, "POST", "/v1/release", keyAlpha, body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("exhausted release = %d, want 429: %s", status, raw)
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.RemainingEps == nil || *eb.RemainingEps != 0.5 {
		t.Fatalf("429 remaining eps = %v, want 0.5", eb.RemainingEps)
	}

	status, raw = do(t, hs, "GET", "/v1/stats", keyAlpha, "")
	if status != http.StatusOK {
		t.Fatalf("stats = %d: %s", status, raw)
	}
	var stats statsJSON
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Tenant != "alpha" || stats.Definition != "weak-er-ee" {
		t.Errorf("stats identity = %s/%s, want alpha/weak-er-ee", stats.Tenant, stats.Definition)
	}
	if stats.SpentEps != 2 || stats.RemainingEps != 0.5 || stats.Releases != 1 {
		t.Errorf("stats budget view = spent %g / remaining %g / %d releases, want 2 / 0.5 / 1",
			stats.SpentEps, stats.RemainingEps, stats.Releases)
	}
	if len(stats.SpendByEpoch) != 1 || stats.SpendByEpoch[0].Epoch != 0 || stats.SpendByEpoch[0].Eps != 2 {
		t.Errorf("stats ledger = %+v, want one epoch-0 entry with eps 2", stats.SpendByEpoch)
	}
	if len(stats.Cache) == 0 {
		t.Error("stats carries no cache counters")
	}
}
