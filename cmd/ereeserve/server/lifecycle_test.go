package server

// Graceful-degradation tests: drain semantics (in-flight requests
// complete, new ones are refused), admin-advance/shutdown atomicity,
// load shedding, and the readiness probe's state machine.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// startService boots a durable server on a real socket.
func startService(t *testing.T, dir string, opts Options, ro RunOptions) (*Server, *Service) {
	t.Helper()
	opts.StateDir = dir
	srv, err := Open(core.NewPublisher(testDataset(t, 1)), testRegistry(t, nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := srv.Start("127.0.0.1:0", ro)
	if err != nil {
		t.Fatal(err)
	}
	return srv, svc
}

// sendPartial opens a raw connection and sends a request's headers plus
// the first part of its body, leaving the handler blocked mid-read.
func sendPartial(t *testing.T, addr, path, key, body string, holdBack int) (net.Conn, string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	head := fmt.Sprintf("POST %s HTTP/1.1\r\nHost: x\r\n%s: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
		path, apiKeyHeader, key, len(body))
	sent := body[:len(body)-holdBack]
	if _, err := io.WriteString(conn, head+sent); err != nil {
		t.Fatal(err)
	}
	return conn, body[len(body)-holdBack:]
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGracefulDrain: a request already being read when shutdown begins
// completes — full status line and full body — while a connection
// attempted after the drain starts is refused. The drain must also
// outlive the request: Shutdown returns only after the response is
// written and then closes the accounting store, so no charge can race
// the close.
func TestGracefulDrain(t *testing.T) {
	srv, svc := startService(t, t.TempDir(), Options{NoiseSeed: 7}, RunOptions{})
	body := `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5,"seq":1}`
	conn, rest := sendPartial(t, svc.Addr(), "/v1/release", keyAlpha, body, 8)
	defer conn.Close()
	waitFor(t, "handler to go in-flight", func() bool { return srv.inflight.Load() >= 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownDone <- svc.Shutdown(ctx)
	}()
	waitFor(t, "drain to begin", func() bool { return srv.state.Load() == stateDraining })

	// New connections are refused once the listener is down. The
	// listener closes inside http.Server.Shutdown, a hair after the
	// state flip, so allow the handful of instants in between.
	waitFor(t, "listener teardown", func() bool {
		c, err := net.DialTimeout("tcp", svc.Addr(), time.Second)
		if err != nil {
			return true
		}
		c.Close()
		return false
	})

	// The held request now completes and gets its full response.
	if _, err := io.WriteString(conn, rest); err != nil {
		t.Fatalf("completing in-flight body: %v", err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("reading in-flight response during drain: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading drained response body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d: %s", resp.StatusCode, raw)
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		t.Fatalf("drained response body truncated: %q", raw)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-svc.Done(); err != nil {
		t.Fatalf("serve loop: %v", err)
	}
}

// TestAdvanceShutdownAtomicity: an admin advance in flight when the
// drain starts runs to completion — and is durably logged — before the
// store closes; recovery then sees the whole advance, never a half.
func TestAdvanceShutdownAtomicity(t *testing.T) {
	dir := t.TempDir()
	opts := Options{NoiseSeed: 7, AdminKey: keyAdmin, DeltaSeed: 100}
	srv, svc := startService(t, dir, opts, RunOptions{})
	conn, rest := sendPartial(t, svc.Addr(), "/v1/admin/advance", keyAdmin, `{"quarters":1}`, 2)
	defer conn.Close()
	waitFor(t, "advance to go in-flight", func() bool { return srv.inflight.Load() >= 1 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- svc.Shutdown(ctx)
	}()
	waitFor(t, "drain to begin", func() bool { return srv.state.Load() == stateDraining })

	if _, err := io.WriteString(conn, rest); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("reading advance response during drain: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight advance during drain = %d: %s", resp.StatusCode, raw)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Recovery sees the completed advance: publisher and every tenant
	// ledger at epoch 1.
	srv2, err := Open(core.NewPublisher(testDataset(t, 1)), testRegistry(t, nil), Options{
		NoiseSeed: 7, AdminKey: keyAdmin, DeltaSeed: 100, StateDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.closePersistent()
	if got := srv2.pub.Epoch(); got != 1 {
		t.Fatalf("recovered epoch = %d, want 1 (advance completed before shutdown)", got)
	}
	if got := tenantOf(t, srv2, "alpha").Acct.Epoch(); got != 1 {
		t.Fatalf("recovered tenant ledger epoch = %d, want 1", got)
	}
}

// TestDrainRefusesNewAdvance: an advance that arrives after the drain
// begins is refused with 503 — it can never interleave with the
// store's compaction and close.
func TestDrainRefusesNewAdvance(t *testing.T) {
	srv, hs := newTestServer(t, 1, Options{NoiseSeed: 7, AdminKey: keyAdmin}, nil)
	srv.beginDrain()
	status, body := do(t, hs, "POST", "/v1/admin/advance", keyAdmin, `{"quarters":1}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("advance during drain = %d (%s), want 503", status, body)
	}
	if !strings.Contains(string(body), "draining") {
		t.Fatalf("drain refusal body = %s", body)
	}
}

// TestLoadShedding: with MaxInFlight=1, a request held in its handler
// causes the next one to be shed with 503 + Retry-After instead of
// queueing behind it; the slot frees once the first completes.
func TestLoadShedding(t *testing.T) {
	srv, hs := newTestServer(t, 1, Options{NoiseSeed: 7, MaxInFlight: 1}, nil)
	// Hold a request in-flight: stream its body through a pipe the
	// handler blocks reading.
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", hs.URL+"/v1/release", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(apiKeyHeader, keyAlpha)
	type result struct {
		status int
		err    error
	}
	first := make(chan result, 1)
	go func() {
		resp, err := hs.Client().Do(req)
		if err != nil {
			first <- result{0, err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		first <- result{resp.StatusCode, nil}
	}()
	waitFor(t, "first request to hold its slot", func() bool { return srv.inflight.Load() >= 1 })

	shedReq, err := http.NewRequest("POST", hs.URL+"/v1/release",
		strings.NewReader(`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	shedReq.Header.Set(apiKeyHeader, keyAlpha)
	resp, err := hs.Client().Do(shedReq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity request = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// Release the held request; its slot frees and serving resumes.
	io.WriteString(pw, `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}`)
	pw.Close()
	r := <-first
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("held request = (%d, %v), want 200", r.status, r.err)
	}
	status, _ := do(t, hs, "POST", "/v1/release", keyAlpha,
		`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}`)
	if status != http.StatusOK {
		t.Fatalf("request after slot freed = %d, want 200", status)
	}
}

// TestReadyzStateMachine: /readyz tracks the lifecycle — 503 while
// starting, 200 when ready, 503 once draining — while /healthz stays
// 200 throughout (liveness is not readiness).
func TestReadyzStateMachine(t *testing.T) {
	srv, hs := newTestServer(t, 1, Options{NoiseSeed: 7}, nil)

	probe := func(path string) (int, string) {
		status, body := do(t, hs, "GET", path, "", "")
		return status, string(body)
	}
	if status, body := probe("/readyz"); status != http.StatusOK || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("ready server /readyz = %d %s", status, body)
	}

	srv.state.Store(stateStarting)
	if status, body := probe("/readyz"); status != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("starting server /readyz = %d %s", status, body)
	}
	if status, _ := probe("/healthz"); status != http.StatusOK {
		t.Fatalf("starting server /healthz = %d, want 200 (alive)", status)
	}
	// Release traffic is refused while starting.
	if status, _ := do(t, hs, "POST", "/v1/release", keyAlpha,
		`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}`); status != http.StatusServiceUnavailable {
		t.Fatalf("release while starting = %d, want 503", status)
	}

	srv.state.Store(stateReady)
	srv.beginDrain()
	if status, body := probe("/readyz"); status != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining server /readyz = %d %s", status, body)
	}
	if status, _ := probe("/healthz"); status != http.StatusOK {
		t.Fatalf("draining server /healthz = %d, want 200 (alive)", status)
	}
}

// TestRequestDeadline: the withTimeout wrapper cuts off a handler that
// exceeds RequestTimeout with 503 — one slow request cannot pin its
// in-flight slot past the deadline.
func TestRequestDeadline(t *testing.T) {
	srv := New(core.NewPublisher(testDataset(t, 1)), testRegistry(t, nil), Options{NoiseSeed: 7})
	srv.reqTimeout = 20 * time.Millisecond
	release := make(chan struct{})
	slow := srv.withTimeout(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer close(release)
	rec := httptest.NewRecorder()
	slow.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/release", strings.NewReader("{}")))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-deadline handler = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "deadline") {
		t.Fatalf("deadline body = %q", rec.Body.String())
	}
}

// TestReadTimeoutReclaimsStalledBody: a client that sends headers and
// then stalls its body is cut loose by the socket's ReadTimeout — the
// server closes the connection instead of holding it (and, with
// shedding, its slot) forever.
func TestReadTimeoutReclaimsStalledBody(t *testing.T) {
	srv, svc := startService(t, t.TempDir(), Options{NoiseSeed: 7}, RunOptions{ReadTimeout: 100 * time.Millisecond})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	}()
	body := `{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":0.5}`
	conn, _ := sendPartial(t, svc.Addr(), "/v1/release", keyAlpha, body, 8)
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	// The server must terminate the exchange (close or error response)
	// well before our 10s guard; a hung read here means no timeout fired.
	if _, err := io.ReadAll(conn); err != nil {
		t.Fatalf("waiting for server to reclaim stalled connection: %v", err)
	}
	waitFor(t, "stalled request's slot to free", func() bool { return srv.inflight.Load() == 0 })
}
