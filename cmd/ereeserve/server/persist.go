package server

// Durable accounting for the release service, built on internal/wal.
//
// The write-ahead contract: a spend record reaches the log — and
// fsync — before the release's response bytes leave the process, so
// no observed response exists without a durable record of its charge.
// The safe failure direction is over-charging (a crash after the
// record but before the response wastes budget); under-charging would
// let a restarted tenant re-spend, which is a privacy violation.
//
// The log carries seven record kinds: tenant registration (budget
// parameters, so recovery can rebuild an accountant before replaying
// its charges), spends (the summed (ε, δ) of one charge plus its
// request identity when tagged), per-tenant ledger advances, dataset
// advances (the absolute quarter index and generation seed — deltas
// are generated deterministically from the seed, so recovery replays
// the dataset lineage instead of persisting datasets), fencing terms
// (a node establishing or observing a term — see replication.go),
// and periodic state digests (SHA-256 over the canonical state
// encoding; replaying a digest record verifies it, so both recovery
// and a streaming follower detect divergence instead of serving from
// a forked state).
//
// The same log is the replication stream: a follower applies shipped
// records through applyRecord — the identical code path recovery
// uses — so a mirror is correct exactly when recovery is.
//
// Floats travel as IEEE-754 bit patterns and recovery re-applies the
// same additions in the same per-tenant order the live accountant
// performed them (the journal write happens under the accountant's
// mutex), so a recovered Registry is bit-identical to the one that
// crashed — spent totals, per-epoch ledgers, everything.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/crashpoint"
	"repro/internal/privacy"
	"repro/internal/wal"
)

// Record kinds. Values are part of the on-disk format; never renumber.
const (
	recRegister       byte = 1
	recSpend          byte = 2
	recAdvanceTenant  byte = 3
	recAdvanceDataset byte = 4
	recTerm           byte = 5 // node establishes fencing term (promote / first boot)
	recFence          byte = 6 // node observed a higher foreign term and fenced itself
	recDigest         byte = 7 // SHA-256 over the canonical state body at this log position
)

// snapshotVersion 2 added the fencing term and fenced flag; version-1
// snapshots (pre-replication state dirs) decode with term 0.
const snapshotVersion byte = 2

// replayWindow is the default bound on the per-tenant ring of
// remembered request identities for duplicate detection (configurable
// via Options.ReplayWindow / the replay_window config field). A retry
// older than the window re-charges — the safe direction (never a free
// fresh release).
const replayWindow = 4096

// digestEveryDefault is how many appended records elapse between
// journaled state digests. Small enough that every chaos script
// crosses at least one digest check; the encode-and-hash is over the
// accounting state only (tens of KB at realistic tenant counts).
const digestEveryDefault = 8

// Crash-point names (armed via EREE_CRASH, see internal/crashpoint).
const (
	crashBeforeSync     = "wal-before-sync"
	crashAfterSync      = "wal-after-sync"
	crashBeforeResponse = "serve-before-response"
	crashMidResponse    = "serve-mid-response"
	crashAfterAdvance   = "advance-after-record"
)

// ---- binary codec -------------------------------------------------

// recWriter builds a record/snapshot payload. All integers big-endian,
// strings length-prefixed, floats as Float64bits — the same canonical
// style as the request digest encoding (digest.go).
type recWriter struct{ b []byte }

func (w *recWriter) u8(v byte)     { w.b = append(w.b, v) }
func (w *recWriter) u32(v uint32)  { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *recWriter) u64(v uint64)  { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *recWriter) i64(v int64)   { w.u64(uint64(v)) }
func (w *recWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *recWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

var errTruncatedRecord = errors.New("truncated record")

type recReader struct {
	b   []byte
	off int
}

func (r *recReader) u8() (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, errTruncatedRecord
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *recReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, errTruncatedRecord
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *recReader) u64() (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, errTruncatedRecord
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *recReader) i64() (int64, error) { v, err := r.u64(); return int64(v), err }

func (r *recReader) f64() (float64, error) { v, err := r.u64(); return math.Float64frombits(v), err }

func (r *recReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if uint32(len(r.b)-r.off) < n {
		return "", errTruncatedRecord
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *recReader) bytes(n int) ([]byte, error) {
	if len(r.b)-r.off < n {
		return nil, errTruncatedRecord
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *recReader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("record has %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// ---- journal ------------------------------------------------------

// Persistence adapts the WAL store into the privacy.Journal the
// accountants write through, plus the server-level dataset-advance
// record. Every Log method is durable on return (group-committed
// under concurrency via wal.Store.Stage/Commit).
//
// When a shadow state is attached (setShadow, done by the primary
// after its boot compaction), every staged record is also applied to
// the shadow — a persistentState maintained in exact log order, which
// is what log replay would reconstruct. The shadow is what periodic
// digest records are computed over: every digestEvery records the
// journal stages a recDigest carrying SHA-256 over the canonical
// state body, and any replayer (recovery, a streaming follower)
// recomputes and compares at the same log position. Staging — record
// ordering plus shadow application — happens under p.mu; the fsync
// wait does not, so group commit still batches.
type Persistence struct {
	store *wal.Store

	mu          sync.Mutex
	shadow      *persistentState
	digestEvery int
	sinceDigest int
}

// setShadow attaches the log-ordered shadow state digests are
// computed over. digestEvery ≤ 0 selects the default cadence.
func (p *Persistence) setShadow(st *persistentState, digestEvery int) {
	if digestEvery <= 0 {
		digestEvery = digestEveryDefault
	}
	p.mu.Lock()
	p.shadow = st
	p.digestEvery = digestEvery
	p.sinceDigest = 0
	p.mu.Unlock()
}

// append stages one record (and, at the digest cadence, a trailing
// digest record), applies it to the shadow state, and blocks until
// the group commit covering it completes.
func (p *Persistence) append(rec []byte) error {
	p.mu.Lock()
	seq, err := p.store.Stage(rec)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	if p.shadow != nil {
		if aerr := p.shadow.applyRecord(rec); aerr != nil {
			// The record is staged but the shadow refused it: the log and
			// the in-memory mirror would disagree from here on. Surfacing
			// the error aborts the charge (the server sheds), which is the
			// safe over-charging direction — the staged record may still
			// reach disk and replay as spend with no response sent.
			p.mu.Unlock()
			return fmt.Errorf("server: shadow state apply: %w", aerr)
		}
		p.sinceDigest++
		if p.sinceDigest >= p.digestEvery {
			d := digestOf(p.shadow)
			var w recWriter
			w.u8(recDigest)
			w.b = append(w.b, d[:]...)
			if dseq, derr := p.store.Stage(w.b); derr == nil {
				// Digest records do not mutate state; nothing to apply.
				seq = dseq
				p.sinceDigest = 0
			}
		}
	}
	p.mu.Unlock()
	return p.store.Commit(seq)
}

func (p *Persistence) LogSpend(rec privacy.SpendRecord) error {
	var w recWriter
	w.u8(recSpend)
	w.str(rec.Tenant)
	w.f64(rec.Eps)
	w.f64(rec.Delta)
	w.u32(uint32(rec.Releases))
	if rec.Tag != nil {
		w.u8(1)
		w.i64(rec.Tag.Seq)
		w.str(rec.Tag.Digest)
		w.u64(uint64(rec.Tag.Epoch))
	} else {
		w.u8(0)
	}
	return p.append(w.b)
}

func (p *Persistence) LogAdvance(rec privacy.AdvanceRecord) error {
	var w recWriter
	w.u8(recAdvanceTenant)
	w.str(rec.Tenant)
	w.u64(uint64(rec.Epoch))
	return p.append(w.b)
}

func (p *Persistence) LogRegister(rec privacy.RegisterRecord) error {
	var w recWriter
	w.u8(recRegister)
	w.str(rec.Tenant)
	w.u32(uint32(rec.Def))
	w.f64(rec.Alpha)
	w.f64(rec.BudgetEps)
	w.f64(rec.BudgetDelta)
	return p.append(w.b)
}

// LogDatasetAdvance records that the server absorbed its quarter-th
// quarterly delta, generated from seed. Recovery regenerates the delta
// from the seed — generation is deterministic — and re-advances.
func (p *Persistence) LogDatasetAdvance(quarter int, seed int64) error {
	var w recWriter
	w.u8(recAdvanceDataset)
	w.u64(uint64(quarter))
	w.i64(seed)
	return p.append(w.b)
}

// LogTerm durably records this node establishing term (promotion or
// first primary boot); LogFence records it observing a higher foreign
// term and fencing itself. Both are monotonic: applyRecord refuses a
// regression, so a forked log cannot smuggle an old term back in.
func (p *Persistence) LogTerm(term uint64) error {
	var w recWriter
	w.u8(recTerm)
	w.u64(term)
	return p.append(w.b)
}

func (p *Persistence) LogFence(term uint64) error {
	var w recWriter
	w.u8(recFence)
	w.u64(term)
	return p.append(w.b)
}

// ---- recovered state ----------------------------------------------

// replayKey is the dedup identity of a charged request: with wire
// determinism, (tenant, seq, digest, epoch) fully determines the
// response bytes, so a repeat under the same key can be re-served
// without a second charge.
type replayKey struct {
	Seq    int64
	Digest string
	Epoch  int
}

// tenantState is one tenant's accounting as recovered from disk.
type tenantState struct {
	Def         privacy.Definition
	Alpha       float64
	BudgetEps   float64
	BudgetDelta float64
	SpentEps    float64
	SpentDelta  float64
	Releases    int
	Ledger      []privacy.EpochSpend
	NextSeq     int64
	Recent      []replayKey // oldest first, ≤ replayWindow
}

// persistentState is everything the snapshot carries (and the log
// patches): the dataset lineage, every tenant's accounting, and the
// node's fencing term. window bounds each tenant's Recent ring; it is
// configuration (not state), so it travels outside the snapshot — but
// because digests cover the ring, primary and follower must agree on
// it (a mismatch surfaces as a divergence halt, which is correct:
// the mirrors genuinely differ).
type persistentState struct {
	QuarterSeeds []int64
	Tenants      map[string]*tenantState
	Term         uint64
	Fenced       bool

	window int
}

func newPersistentState() *persistentState {
	return &persistentState{Tenants: make(map[string]*tenantState)}
}

func (st *persistentState) windowSize() int {
	if st.window > 0 {
		return st.window
	}
	return replayWindow
}

// digestOf is the divergence detector's view of state: SHA-256 over
// the canonical body encoding — dataset lineage, tenant ledgers, seq
// counters, replay rings — in sorted tenant order. The fencing term
// and fenced flag are deliberately excluded: a promoted follower (term
// bumped) must still converge byte-for-byte with an uninterrupted
// single-node run of the same history.
func digestOf(st *persistentState) [sha256.Size]byte {
	var w recWriter
	encodeStateBody(&w, st)
	return sha256.Sum256(w.b)
}

// applyRecord replays one log record onto the state. Records are
// CRC-clean by the time they get here, so a semantic violation means
// the log and snapshot disagree structurally — that is corruption, and
// recovery fails rather than guessing at spend totals.
func (st *persistentState) applyRecord(payload []byte) error {
	r := &recReader{b: payload}
	kind, err := r.u8()
	if err != nil {
		return err
	}
	switch kind {
	case recRegister:
		name, err := r.str()
		if err != nil {
			return err
		}
		def, err := r.u32()
		if err != nil {
			return err
		}
		alpha, err := r.f64()
		if err != nil {
			return err
		}
		beps, err := r.f64()
		if err != nil {
			return err
		}
		bdelta, err := r.f64()
		if err != nil {
			return err
		}
		if err := r.done(); err != nil {
			return err
		}
		if t, ok := st.Tenants[name]; ok {
			// Re-registration (every boot journals the registry): budgets
			// may have been reconfigured; identity must not change.
			if t.Def != privacy.Definition(def) || t.Alpha != alpha {
				return fmt.Errorf("tenant %q re-registered under a different definition", name)
			}
			t.BudgetEps, t.BudgetDelta = beps, bdelta
			return nil
		}
		st.Tenants[name] = &tenantState{
			Def: privacy.Definition(def), Alpha: alpha,
			BudgetEps: beps, BudgetDelta: bdelta,
			Ledger: []privacy.EpochSpend{{Epoch: 0}},
		}
		return nil

	case recSpend:
		name, err := r.str()
		if err != nil {
			return err
		}
		eps, err := r.f64()
		if err != nil {
			return err
		}
		delta, err := r.f64()
		if err != nil {
			return err
		}
		releases, err := r.u32()
		if err != nil {
			return err
		}
		tagged, err := r.u8()
		if err != nil {
			return err
		}
		var tag replayKey
		if tagged == 1 {
			if tag.Seq, err = r.i64(); err != nil {
				return err
			}
			if tag.Digest, err = r.str(); err != nil {
				return err
			}
			epoch, err := r.u64()
			if err != nil {
				return err
			}
			tag.Epoch = int(epoch)
		}
		if err := r.done(); err != nil {
			return err
		}
		t, ok := st.Tenants[name]
		if !ok {
			return fmt.Errorf("spend for unregistered tenant %q", name)
		}
		// Same additions, same order as the live accountant — the
		// journal append happens under its mutex — so the recovered
		// floats are bit-identical.
		t.SpentEps += eps
		t.SpentDelta += delta
		t.Releases += int(releases)
		cur := &t.Ledger[len(t.Ledger)-1]
		cur.Eps += eps
		cur.Delta += delta
		cur.Releases += int(releases)
		if tagged == 1 {
			t.Recent = append(t.Recent, tag)
			if win := st.windowSize(); len(t.Recent) > win {
				t.Recent = t.Recent[len(t.Recent)-win:]
			}
			if tag.Seq+1 > t.NextSeq {
				t.NextSeq = tag.Seq + 1
			}
		}
		return nil

	case recAdvanceTenant:
		name, err := r.str()
		if err != nil {
			return err
		}
		epoch, err := r.u64()
		if err != nil {
			return err
		}
		if err := r.done(); err != nil {
			return err
		}
		t, ok := st.Tenants[name]
		if !ok {
			return fmt.Errorf("advance for unregistered tenant %q", name)
		}
		last := t.Ledger[len(t.Ledger)-1].Epoch
		if int(epoch) != last+1 {
			return fmt.Errorf("tenant %q ledger advance to epoch %d from %d", name, epoch, last)
		}
		t.Ledger = append(t.Ledger, privacy.EpochSpend{Epoch: int(epoch)})
		return nil

	case recAdvanceDataset:
		quarter, err := r.u64()
		if err != nil {
			return err
		}
		seed, err := r.i64()
		if err != nil {
			return err
		}
		if err := r.done(); err != nil {
			return err
		}
		if int(quarter) != len(st.QuarterSeeds) {
			return fmt.Errorf("dataset advance for quarter %d, expected %d", quarter, len(st.QuarterSeeds))
		}
		st.QuarterSeeds = append(st.QuarterSeeds, seed)
		return nil

	case recTerm, recFence:
		term, err := r.u64()
		if err != nil {
			return err
		}
		if err := r.done(); err != nil {
			return err
		}
		if term <= st.Term {
			return fmt.Errorf("fencing term regression: %d after %d", term, st.Term)
		}
		st.Term = term
		st.Fenced = kind == recFence
		return nil

	case recDigest:
		sum, err := r.bytes(sha256.Size)
		if err != nil {
			return err
		}
		if err := r.done(); err != nil {
			return err
		}
		if want := digestOf(st); !bytes.Equal(sum, want[:]) {
			return fmt.Errorf("state digest mismatch at log position: recorded %x, computed %x — replica/replay has diverged", sum, want)
		}
		return nil

	default:
		return fmt.Errorf("unknown record kind %d", kind)
	}
}

// encodeSnapshot serializes the full state (sorted tenant order, so
// identical state is identical bytes): a version byte, the fencing
// term and fenced flag, then the canonical body digests cover.
func encodeSnapshot(st *persistentState) []byte {
	var w recWriter
	w.u8(snapshotVersion)
	w.u64(st.Term)
	if st.Fenced {
		w.u8(1)
	} else {
		w.u8(0)
	}
	encodeStateBody(&w, st)
	return w.b
}

func encodeStateBody(w *recWriter, st *persistentState) {
	w.u32(uint32(len(st.QuarterSeeds)))
	for _, seed := range st.QuarterSeeds {
		w.i64(seed)
	}
	names := make([]string, 0, len(st.Tenants))
	for name := range st.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	w.u32(uint32(len(names)))
	for _, name := range names {
		t := st.Tenants[name]
		w.str(name)
		w.u32(uint32(t.Def))
		w.f64(t.Alpha)
		w.f64(t.BudgetEps)
		w.f64(t.BudgetDelta)
		w.f64(t.SpentEps)
		w.f64(t.SpentDelta)
		w.u64(uint64(t.Releases))
		w.i64(t.NextSeq)
		w.u32(uint32(len(t.Ledger)))
		for _, e := range t.Ledger {
			w.u64(uint64(e.Epoch))
			w.f64(e.Eps)
			w.f64(e.Delta)
			w.u64(uint64(e.Releases))
		}
		w.u32(uint32(len(t.Recent)))
		for _, k := range t.Recent {
			w.i64(k.Seq)
			w.str(k.Digest)
			w.u64(uint64(k.Epoch))
		}
	}
}

func decodeSnapshot(payload []byte) (*persistentState, error) {
	r := &recReader{b: payload}
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != 1 && ver != snapshotVersion {
		return nil, fmt.Errorf("snapshot version %d not supported", ver)
	}
	st := newPersistentState()
	if ver >= 2 {
		if st.Term, err = r.u64(); err != nil {
			return nil, err
		}
		fenced, err := r.u8()
		if err != nil {
			return nil, err
		}
		st.Fenced = fenced == 1
	}
	nq, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nq; i++ {
		seed, err := r.i64()
		if err != nil {
			return nil, err
		}
		st.QuarterSeeds = append(st.QuarterSeeds, seed)
	}
	nt, err := r.u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nt; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		t := &tenantState{}
		var def uint32
		if def, err = r.u32(); err != nil {
			return nil, err
		}
		t.Def = privacy.Definition(def)
		if t.Alpha, err = r.f64(); err != nil {
			return nil, err
		}
		if t.BudgetEps, err = r.f64(); err != nil {
			return nil, err
		}
		if t.BudgetDelta, err = r.f64(); err != nil {
			return nil, err
		}
		if t.SpentEps, err = r.f64(); err != nil {
			return nil, err
		}
		if t.SpentDelta, err = r.f64(); err != nil {
			return nil, err
		}
		rel, err := r.u64()
		if err != nil {
			return nil, err
		}
		t.Releases = int(rel)
		if t.NextSeq, err = r.i64(); err != nil {
			return nil, err
		}
		nl, err := r.u32()
		if err != nil {
			return nil, err
		}
		if nl == 0 {
			return nil, fmt.Errorf("tenant %q snapshot has an empty ledger", name)
		}
		for j := uint32(0); j < nl; j++ {
			var e privacy.EpochSpend
			ep, err := r.u64()
			if err != nil {
				return nil, err
			}
			e.Epoch = int(ep)
			if e.Eps, err = r.f64(); err != nil {
				return nil, err
			}
			if e.Delta, err = r.f64(); err != nil {
				return nil, err
			}
			rel, err := r.u64()
			if err != nil {
				return nil, err
			}
			e.Releases = int(rel)
			t.Ledger = append(t.Ledger, e)
		}
		nr, err := r.u32()
		if err != nil {
			return nil, err
		}
		for j := uint32(0); j < nr; j++ {
			var k replayKey
			if k.Seq, err = r.i64(); err != nil {
				return nil, err
			}
			if k.Digest, err = r.str(); err != nil {
				return nil, err
			}
			ep, err := r.u64()
			if err != nil {
				return nil, err
			}
			k.Epoch = int(ep)
			t.Recent = append(t.Recent, k)
		}
		st.Tenants[name] = t
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return st, nil
}

// openState opens the WAL in dir and reconstructs the persistent
// state: decode the snapshot, then replay every post-snapshot record
// (digest records along the way re-verify the replay). window bounds
// the per-tenant replay rings; ≤ 0 selects the default.
func openState(dir string, window int) (*Persistence, *persistentState, error) {
	store, recovered, err := wal.Open(dir, wal.Options{
		BeforeSync: func() { crashpoint.Maybe(crashBeforeSync) },
		AfterSync:  func() { crashpoint.Maybe(crashAfterSync) },
	})
	if err != nil {
		return nil, nil, err
	}
	st := newPersistentState()
	st.window = window
	if recovered.Snapshot != nil {
		st, err = decodeSnapshot(recovered.Snapshot)
		if err != nil {
			store.Close()
			return nil, nil, fmt.Errorf("server: state snapshot: %w", err)
		}
		st.window = window
	}
	for i, raw := range recovered.Records {
		if err := st.applyRecord(raw); err != nil {
			store.Close()
			return nil, nil, fmt.Errorf("server: state log record %d: %w", i, err)
		}
	}
	return &Persistence{store: store}, st, nil
}

// ---- replay cache -------------------------------------------------

// replayCache is the live mirror of each tenant's Recent ring: the
// request identities whose charges are on disk, so a repeat can be
// served as a free replay. Bounded per tenant (capacity comes from
// Options.ReplayWindow); eviction is oldest-first, and an evicted
// identity simply re-charges on retry.
type replayCache struct {
	mu       sync.Mutex
	capacity int
	tenants  map[string]*tenantReplay
}

type tenantReplay struct {
	seen      map[replayKey]struct{}
	fifo      []replayKey
	evictions int64
}

func newReplayCache(capacity int) *replayCache {
	if capacity <= 0 {
		capacity = replayWindow
	}
	return &replayCache{capacity: capacity, tenants: make(map[string]*tenantReplay)}
}

func (c *replayCache) add(tenant string, k replayKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.tenants[tenant]
	if !ok {
		tr = &tenantReplay{seen: make(map[replayKey]struct{})}
		c.tenants[tenant] = tr
	}
	if _, dup := tr.seen[k]; dup {
		return
	}
	tr.seen[k] = struct{}{}
	tr.fifo = append(tr.fifo, k)
	if len(tr.fifo) > c.capacity {
		evict := tr.fifo[0]
		tr.fifo = tr.fifo[1:]
		delete(tr.seen, evict)
		tr.evictions++
	}
}

// stats reports the tenant's live ring occupancy, how many identities
// have been evicted over its lifetime, and the configured bound —
// surfaced in /v1/stats so operators can see when retries are old
// enough to re-charge.
func (c *replayCache) stats(tenant string) (size int, evictions int64, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tr, ok := c.tenants[tenant]; ok {
		return len(tr.fifo), tr.evictions, c.capacity
	}
	return 0, 0, c.capacity
}

func (c *replayCache) has(tenant string, k replayKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.tenants[tenant]
	if !ok {
		return false
	}
	_, hit := tr.seen[k]
	return hit
}

func (c *replayCache) snapshot(tenant string) []replayKey {
	c.mu.Lock()
	defer c.mu.Unlock()
	tr, ok := c.tenants[tenant]
	if !ok {
		return nil
	}
	return append([]replayKey(nil), tr.fifo...)
}

func (c *replayCache) seed(tenant string, keys []replayKey) {
	for _, k := range keys {
		c.add(tenant, k)
	}
}
