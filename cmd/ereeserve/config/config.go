// Package config holds the ereeserve server configuration: the listen
// address, the dataset the publisher serves, the admin key, and the
// tenant roster — one API key and one private (definition, α, budget)
// accountant per tenant.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/privacy"
)

// Definition tokens as written in config files and reported over the
// wire. These are deliberately short machine tokens, distinct from the
// Table 1 display names privacy.Definition.String() renders.
const (
	DefStrongEREE = "strong-er-ee"
	DefWeakEREE   = "weak-er-ee"
	DefEdgeDP     = "edge-dp"
	DefNodeDP     = "node-dp"
)

// ParseDefinition resolves a config/wire definition token.
func ParseDefinition(tok string) (privacy.Definition, error) {
	switch tok {
	case DefStrongEREE:
		return privacy.StrongEREE, nil
	case DefWeakEREE:
		return privacy.WeakEREE, nil
	case DefEdgeDP:
		return privacy.EdgeDP, nil
	case DefNodeDP:
		return privacy.NodeDP, nil
	}
	return 0, fmt.Errorf("config: unknown privacy definition %q (want %s|%s|%s|%s)",
		tok, DefStrongEREE, DefWeakEREE, DefEdgeDP, DefNodeDP)
}

// DefinitionToken renders a definition as its config/wire token.
func DefinitionToken(d privacy.Definition) string {
	switch d {
	case privacy.StrongEREE:
		return DefStrongEREE
	case privacy.WeakEREE:
		return DefWeakEREE
	case privacy.EdgeDP:
		return DefEdgeDP
	case privacy.NodeDP:
		return DefNodeDP
	}
	return fmt.Sprintf("definition-%d", int(d))
}

// Tenant configures one API consumer: its (non-secret) name, its secret
// API key, and the budget accountant it is charged against.
type Tenant struct {
	Name string `json:"name"`
	Key  string `json:"key"`
	// Definition is the budget's privacy definition token (the
	// accountant accepts releases under definitions at least as strong;
	// a weak-er-ee budget is the permissive serving default).
	Definition string `json:"definition"`
	// Alpha is the accountant's establishment-size protection window
	// (ignored for the graph-DP definitions).
	Alpha       float64 `json:"alpha"`
	BudgetEps   float64 `json:"budget_eps"`
	BudgetDelta float64 `json:"budget_delta"`
}

// Config is the full server configuration.
type Config struct {
	// Addr is the listen address, e.g. ":8080".
	Addr string `json:"addr"`
	// AdminKey authorizes the /v1/admin endpoints (epoch advances).
	AdminKey string `json:"admin_key"`
	// NoiseSeed roots the server's noise streams. Tenant t's request
	// seq draws from Split("tenant:"+t).SplitIndex("req", seq) of this
	// root, so the same seed, tenant roster and per-tenant request
	// sequences reproduce every released value bit for bit.
	NoiseSeed int64 `json:"noise_seed"`
	// DataDir loads a CSV snapshot written by lodesgen; when empty a
	// synthetic snapshot is generated from DataSeed at DataScale.
	DataDir   string `json:"data_dir"`
	DataSeed  int64  `json:"data_seed"`
	DataScale string `json:"data_scale"` // "test" (~40k jobs) or "default" (~0.4M jobs)
	// DeltaSeed roots admin-advance delta generation (seed + quarter
	// index per quarter), so an advance sequence is reproducible too.
	DeltaSeed int64 `json:"delta_seed"`
	// StateDir, when set, makes budget accounting durable: every charge
	// is written ahead to a log under this directory and recovered on
	// restart. Empty means in-memory accounting (budgets reset on
	// restart) — fine for demos, not for real budgets.
	StateDir string `json:"state_dir"`
	// ReplicateFrom, when set, boots this node as a follower mirroring
	// the primary at this base URL (e.g. "http://primary:8080"). Requires
	// state_dir and admin_key — the replication endpoints authenticate
	// with the shared admin key. The follower serves reads, sheds spend
	// traffic with a hint to the primary, and takes over on
	// POST /v1/admin/promote.
	ReplicateFrom string `json:"replicate_from"`
	// ReplayWindow bounds the per-tenant durable replay-dedup ring
	// (request identities re-served without a second charge). 0 means
	// the server default (4096). Primary and followers must agree — the
	// ring is covered by the replication divergence digests.
	ReplayWindow int      `json:"replay_window"`
	Tenants      []Tenant `json:"tenants"`
}

// Default returns the baseline configuration with no tenants: test
// scale, fixed seeds, localhost-ish defaults. Callers add tenants.
func Default() Config {
	return Config{
		Addr:      ":8080",
		AdminKey:  "",
		NoiseSeed: 7,
		DataSeed:  1,
		DataScale: "test",
		DeltaSeed: 100,
	}
}

// Demo returns a runnable single-machine configuration: two tenants
// with effectively unbounded budgets (load generation) and a fixed
// admin key. Not for production — every key is public.
func Demo() Config {
	c := Default()
	c.AdminKey = "admin-demo-key"
	c.Tenants = []Tenant{
		{Name: "alpha", Key: "tenant-alpha-key", Definition: DefWeakEREE, Alpha: 0.1, BudgetEps: 1e9, BudgetDelta: 0.5},
		{Name: "beta", Key: "tenant-beta-key", Definition: DefWeakEREE, Alpha: 0.1, BudgetEps: 1e9, BudgetDelta: 0.5},
	}
	return c
}

// Load reads a JSON configuration file. Unknown fields are rejected so
// a typo'd budget field cannot silently grant an unbounded budget.
func Load(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	c := Default()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("config: parse %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks the configuration for the mistakes that would
// otherwise surface as confusing runtime behavior.
func (c Config) Validate() error {
	if c.Addr == "" {
		return fmt.Errorf("config: addr must be set")
	}
	switch c.DataScale {
	case "test", "default":
	default:
		return fmt.Errorf("config: data_scale must be \"test\" or \"default\", got %q", c.DataScale)
	}
	if len(c.Tenants) == 0 {
		return fmt.Errorf("config: at least one tenant is required")
	}
	if c.ReplayWindow < 0 {
		return fmt.Errorf("config: replay_window must be non-negative (0 means the default)")
	}
	if c.ReplicateFrom != "" {
		if c.StateDir == "" {
			return fmt.Errorf("config: replicate_from requires state_dir (the follower mirrors the primary's log durably)")
		}
		if c.AdminKey == "" {
			return fmt.Errorf("config: replicate_from requires admin_key (replication endpoints authenticate with it)")
		}
	}
	for i, t := range c.Tenants {
		if _, err := ParseDefinition(t.Definition); err != nil {
			return fmt.Errorf("config: tenant %d (%s): %w", i, t.Name, err)
		}
		if t.Key == c.AdminKey && c.AdminKey != "" {
			return fmt.Errorf("config: tenant %q reuses the admin key", t.Name)
		}
	}
	return nil
}

// BuildRegistry constructs the tenant registry: one accountant per
// configured tenant. Name/key uniqueness and budget validity are
// enforced by the underlying constructors.
func (c Config) BuildRegistry() (*privacy.Registry, error) {
	reg := privacy.NewRegistry()
	for _, t := range c.Tenants {
		def, err := ParseDefinition(t.Definition)
		if err != nil {
			return nil, err
		}
		acct, err := privacy.NewAccountant(def, t.Alpha, t.BudgetEps, t.BudgetDelta)
		if err != nil {
			return nil, fmt.Errorf("config: tenant %q: %w", t.Name, err)
		}
		if _, err := reg.Register(t.Name, t.Key, acct); err != nil {
			return nil, fmt.Errorf("config: %w", err)
		}
	}
	return reg, nil
}
