package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuf is an io.Writer safe to read while run writes to it from the
// test goroutine.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

var listeningRE = regexp.MustCompile(`listening on (\S+)`)

// startRun launches run in a goroutine on a kernel-assigned port and
// waits for the bound address. The returned stop func signals shutdown
// and waits for run to return.
func startRun(t *testing.T, args []string) (addr string, out *syncBuf, stop func() error) {
	t.Helper()
	out = &syncBuf{}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- run(args, out, sig) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listeningRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited before listening: %v\noutput: %s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; output: %s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	var once sync.Once
	stop = func() error {
		var err error
		once.Do(func() {
			sig <- os.Interrupt
			select {
			case err = <-done:
			case <-time.After(15 * time.Second):
				err = fmt.Errorf("run did not return after signal")
			}
		})
		return err
	}
	t.Cleanup(func() { stop() })
	return addr, out, stop
}

func TestRunDemo(t *testing.T) {
	addr, out, stop := startRun(t, []string{"-demo", "-addr", "127.0.0.1:0"})
	if !strings.Contains(out.String(), "2 tenant(s)") {
		t.Errorf("startup output = %q, want it to mention 2 tenant(s)", out.String())
	}
	// The bound server is live: demo tenants can release.
	req, _ := http.NewRequest("POST", "http://"+addr+"/v1/release",
		strings.NewReader(`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}`))
	req.Header.Set("X-API-Key", "tenant-alpha-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("demo release = %d: %s", resp.StatusCode, body)
	}
	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestRunConfigFileWithState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "server.json")
	cfg := `{
		"addr": ":7070",
		"noise_seed": 3,
		"data_seed": 2,
		"tenants": [
			{"name": "solo", "key": "solo-key", "definition": "weak-er-ee", "alpha": 0.1, "budget_eps": 10, "budget_delta": 0.1}
		]
	}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	stateDir := filepath.Join(dir, "state")
	addr, out, stop := startRun(t, []string{
		"-config", path, "-addr", "127.0.0.1:0", "-state-dir", stateDir,
	})
	if !strings.Contains(out.String(), "durable accounting under "+stateDir) {
		t.Errorf("startup output = %q, want the state dir announced", out.String())
	}
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get("http://" + addr + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", probe, resp.StatusCode)
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The -state-dir flag reached the durability layer: a log exists.
	entries, err := os.ReadDir(stateDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("state dir after shutdown: entries=%v err=%v", entries, err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                        // neither -config nor -demo
		{"-demo", "-config", "x"}, // mutually exclusive
		{"-config", "/does/not/exist.json"},
	} {
		if err := run(args, &strings.Builder{}, nil); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
