package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture is a stand-in for http.ListenAndServe that records what run
// would have served.
type capture struct {
	addr    string
	handler http.Handler
}

func (c *capture) serve(addr string, h http.Handler) error {
	c.addr, c.handler = addr, h
	return nil
}

func TestRunDemo(t *testing.T) {
	var c capture
	var out strings.Builder
	if err := run([]string{"-demo"}, &out, c.serve); err != nil {
		t.Fatal(err)
	}
	if c.addr != ":8080" {
		t.Errorf("addr = %q, want :8080", c.addr)
	}
	if !strings.Contains(out.String(), "2 tenant(s)") {
		t.Errorf("startup line = %q, want it to mention 2 tenant(s)", out.String())
	}
	// The captured handler is a live server: demo tenants can release.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/release",
		strings.NewReader(`{"attrs":["industry"],"mechanism":"smooth-gamma","alpha":0.1,"eps":1}`))
	req.Header.Set("X-API-Key", "tenant-alpha-key")
	c.handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("demo release = %d: %s", rec.Code, rec.Body.Bytes())
	}
}

func TestRunConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "server.json")
	cfg := `{
		"addr": ":7070",
		"noise_seed": 3,
		"data_seed": 2,
		"tenants": [
			{"name": "solo", "key": "solo-key", "definition": "weak-er-ee", "alpha": 0.1, "budget_eps": 10, "budget_delta": 0.1}
		]
	}`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	var c capture
	var out strings.Builder
	if err := run([]string{"-config", path, "-addr", ":9999"}, &out, c.serve); err != nil {
		t.Fatal(err)
	}
	if c.addr != ":9999" {
		t.Errorf("-addr override not applied: addr = %q", c.addr)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/healthz", nil)
	c.handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var c capture
	for _, args := range [][]string{
		{},                        // neither -config nor -demo
		{"-demo", "-config", "x"}, // mutually exclusive
		{"-config", "/does/not/exist.json"},
	} {
		if err := run(args, &strings.Builder{}, c.serve); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
