// Command ereeserve runs the multi-tenant HTTP release service: one
// publisher over one versioned LODES dataset, one budget accountant per
// tenant, and an admin endpoint that absorbs quarterly deltas under
// live load without stalling in-flight releases.
//
// Usage:
//
//	ereeserve -demo                      # two demo tenants, generated data
//	ereeserve -config server.json        # full configuration from a file
//	ereeserve -demo -addr :9090          # override the listen address
//	ereeserve -demo -state-dir ./state   # durable, crash-safe accounting
//	ereeserve -demo -state-dir ./f -addr :9091 \
//	          -replicate-from http://localhost:9090   # hot-standby follower
//
// With -state-dir (or "state_dir" in the config) every budget charge is
// written ahead to a log before its response leaves the process, and a
// restart recovers the exact accounting state — kill -9 included. The
// server is not ready (GET /readyz) until recovery finishes, and
// SIGTERM/SIGINT drain gracefully: in-flight requests complete, new
// ones are refused, then the log is compacted and closed.
//
// See cmd/ereeserve/config for the configuration schema and
// cmd/ereeserve/server for the endpoints and the wire determinism
// contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/cmd/ereeserve/config"
	"repro/cmd/ereeserve/server"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ereeserve: ")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], os.Stdout, sig); err != nil {
		log.Fatal(err)
	}
}

// shutdownGrace bounds the drain: in-flight requests get this long to
// finish before the listener is torn down under them.
const shutdownGrace = 30 * time.Second

// run is the whole command behind a testable seam: tests pass their own
// signal channel to drive shutdown and read the bound address (the
// "listening on" line supports ":0") from out.
func run(args []string, out io.Writer, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("ereeserve", flag.ContinueOnError)
	cfgPath := fs.String("config", "", "JSON configuration file (see cmd/ereeserve/config)")
	demo := fs.Bool("demo", false, "serve the built-in two-tenant demo configuration")
	addr := fs.String("addr", "", "override the configured listen address")
	stateDir := fs.String("state-dir", "", "directory for durable accounting state (overrides the configured state_dir)")
	replicateFrom := fs.String("replicate-from", "", "boot as a follower mirroring the primary at this base URL (overrides the configured replicate_from)")
	replayWindow := fs.Int("replay-window", 0, "per-tenant replay-dedup ring bound, 0 = default (overrides the configured replay_window)")
	replPoll := fs.Duration("repl-poll", 0, "follower poll interval for the primary's replication stream, 0 = default (250ms)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("invalid arguments")
	}

	var cfg config.Config
	switch {
	case *cfgPath != "" && *demo:
		return fmt.Errorf("-config and -demo are mutually exclusive")
	case *cfgPath != "":
		var err error
		if cfg, err = config.Load(*cfgPath); err != nil {
			return err
		}
	case *demo:
		cfg = config.Demo()
	default:
		return fmt.Errorf("one of -config or -demo is required")
	}
	if *addr != "" {
		cfg.Addr = *addr
	}
	if *stateDir != "" {
		cfg.StateDir = *stateDir
	}
	if *replicateFrom != "" {
		cfg.ReplicateFrom = *replicateFrom
	}
	if *replayWindow != 0 {
		cfg.ReplayWindow = *replayWindow
	}
	if cfg.ReplicateFrom != "" {
		// Re-check the follower invariants after flag overrides.
		if err := cfg.Validate(); err != nil {
			return err
		}
	}

	data, err := buildDataset(cfg)
	if err != nil {
		return err
	}
	reg, err := cfg.BuildRegistry()
	if err != nil {
		return err
	}
	srv, err := server.Open(core.NewPublisher(data), reg, server.Options{
		NoiseSeed:     cfg.NoiseSeed,
		AdminKey:      cfg.AdminKey,
		DeltaSeed:     cfg.DeltaSeed,
		StateDir:      cfg.StateDir,
		ReplicateFrom: cfg.ReplicateFrom,
		ReplayWindow:  cfg.ReplayWindow,
		ReplPoll:      *replPoll,
	})
	if err != nil {
		return err
	}
	svc, err := srv.Start(cfg.Addr, server.RunOptions{})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "serving %d jobs / %d establishments for %d tenant(s)\n",
		data.NumJobs(), data.NumEstablishments(), reg.Len())
	if cfg.StateDir != "" {
		fmt.Fprintf(out, "durable accounting under %s\n", cfg.StateDir)
	}
	if cfg.ReplicateFrom != "" {
		fmt.Fprintf(out, "follower: replicating from %s\n", cfg.ReplicateFrom)
	}
	fmt.Fprintf(out, "listening on %s\n", svc.Addr())

	select {
	case err := <-svc.Done():
		return err
	case <-sig:
		fmt.Fprintln(out, "shutting down: draining in-flight requests")
		ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
		defer cancel()
		return svc.Shutdown(ctx)
	}
}

// buildDataset loads the configured CSV snapshot, or generates a
// synthetic one from the configured seed and scale.
func buildDataset(cfg config.Config) (*lodes.Dataset, error) {
	if cfg.DataDir != "" {
		return lodes.ReadCSV(cfg.DataDir)
	}
	gen := lodes.TestConfig()
	if cfg.DataScale == "default" {
		gen = lodes.DefaultConfig()
	}
	return lodes.Generate(gen, dist.NewStreamFromSeed(cfg.DataSeed))
}
