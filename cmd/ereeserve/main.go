// Command ereeserve runs the multi-tenant HTTP release service: one
// publisher over one versioned LODES dataset, one budget accountant per
// tenant, and an admin endpoint that absorbs quarterly deltas under
// live load without stalling in-flight releases.
//
// Usage:
//
//	ereeserve -demo                      # two demo tenants, generated data
//	ereeserve -config server.json        # full configuration from a file
//	ereeserve -demo -addr :9090          # override the listen address
//
// See cmd/ereeserve/config for the configuration schema and
// cmd/ereeserve/server for the endpoints and the wire determinism
// contract.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"

	"repro/cmd/ereeserve/config"
	"repro/cmd/ereeserve/server"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ereeserve: ")
	if err := run(os.Args[1:], os.Stdout, http.ListenAndServe); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam; serve stands in for
// http.ListenAndServe so tests can capture the handler instead of
// binding a port.
func run(args []string, out io.Writer, serve func(addr string, h http.Handler) error) error {
	fs := flag.NewFlagSet("ereeserve", flag.ContinueOnError)
	cfgPath := fs.String("config", "", "JSON configuration file (see cmd/ereeserve/config)")
	demo := fs.Bool("demo", false, "serve the built-in two-tenant demo configuration")
	addr := fs.String("addr", "", "override the configured listen address")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("invalid arguments")
	}

	var cfg config.Config
	switch {
	case *cfgPath != "" && *demo:
		return fmt.Errorf("-config and -demo are mutually exclusive")
	case *cfgPath != "":
		var err error
		if cfg, err = config.Load(*cfgPath); err != nil {
			return err
		}
	case *demo:
		cfg = config.Demo()
	default:
		return fmt.Errorf("one of -config or -demo is required")
	}
	if *addr != "" {
		cfg.Addr = *addr
	}

	data, err := buildDataset(cfg)
	if err != nil {
		return err
	}
	reg, err := cfg.BuildRegistry()
	if err != nil {
		return err
	}
	srv := server.New(core.NewPublisher(data), reg, server.Options{
		NoiseSeed: cfg.NoiseSeed,
		AdminKey:  cfg.AdminKey,
		DeltaSeed: cfg.DeltaSeed,
	})

	fmt.Fprintf(out, "serving %d jobs / %d establishments for %d tenant(s) on %s\n",
		data.NumJobs(), data.NumEstablishments(), reg.Len(), cfg.Addr)
	return serve(cfg.Addr, srv.Handler())
}

// buildDataset loads the configured CSV snapshot, or generates a
// synthetic one from the configured seed and scale.
func buildDataset(cfg config.Config) (*lodes.Dataset, error) {
	if cfg.DataDir != "" {
		return lodes.ReadCSV(cfg.DataDir)
	}
	gen := lodes.TestConfig()
	if cfg.DataScale == "default" {
		gen = lodes.DefaultConfig()
	}
	return lodes.Generate(gen, dist.NewStreamFromSeed(cfg.DataSeed))
}
