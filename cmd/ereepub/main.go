// Command ereepub releases a marginal query over a LODES snapshot under a
// chosen privacy mechanism, printing one row per non-empty cell:
// the cell's attribute values, the released count, and (with -truth) the
// confidential true count for comparison.
//
// Usage:
//
//	ereepub -data data/ -attrs place,industry,ownership \
//	        -mech smooth-gamma -alpha 0.1 -eps 2 [-delta 0.05] [-theta 100] \
//	        [-seed 7] [-truth] [-top 20] \
//	        [-quarters 4] [-deltaseed 1] [-stats]
//
// If -data is omitted a synthetic snapshot is generated in memory.
// With -quarters N the publisher first absorbs N generated quarterly
// deltas (hires, separations, establishment births and deaths), so the
// release comes from epoch N of the versioned dataset; -stats prints
// the per-epoch marginal-cache counters afterwards.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ereepub: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flag parsing, data
// loading or generation, optional quarterly advances, one release, and
// the report written to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ereepub", flag.ContinueOnError)
	dataDir := fs.String("data", "", "dataset directory from lodesgen (default: generate in memory)")
	attrsFlag := fs.String("attrs", "place,industry,ownership", "comma-separated marginal attributes")
	mechFlag := fs.String("mech", "smooth-gamma", "mechanism: log-laplace | smooth-gamma | smooth-laplace | edge-laplace | truncated-laplace")
	alpha := fs.Float64("alpha", 0.1, "establishment-size protection window")
	eps := fs.Float64("eps", 2, "privacy-loss parameter")
	delta := fs.Float64("delta", 0.05, "failure probability (smooth-laplace)")
	theta := fs.Int("theta", 100, "truncation threshold (truncated-laplace)")
	seed := fs.Int64("seed", 7, "noise seed")
	dataSeed := fs.Int64("dataseed", 1, "generator seed when -data is omitted")
	truth := fs.Bool("truth", false, "also print the confidential true counts")
	top := fs.Int("top", 25, "print only the top-N cells by released count (0 = all)")
	quarters := fs.Int("quarters", 0, "quarterly deltas to absorb before releasing")
	deltaSeed := fs.Int64("deltaseed", 1, "base seed for generated quarterly deltas")
	stats := fs.Bool("stats", false, "print per-epoch cache statistics after the release")
	if err := fs.Parse(args); err != nil {
		// The FlagSet already printed the problem (or the usage text, for
		// -h) to stderr; -h is a clean exit, anything else a terse one.
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("invalid arguments")
	}

	var data *eree.Dataset
	var err error
	if *dataDir != "" {
		data, err = eree.LoadCSV(*dataDir)
	} else {
		data, err = eree.Generate(eree.TestDataConfig(), *dataSeed)
	}
	if err != nil {
		return err
	}

	kind, err := eree.ParseMechanismKind(*mechFlag)
	if err != nil {
		return err
	}
	req := eree.Request{
		Attrs:     strings.Split(*attrsFlag, ","),
		Mechanism: kind,
		Alpha:     *alpha,
		Eps:       *eps,
		Delta:     *delta,
		Theta:     *theta,
	}
	pub := eree.NewPublisher(data)
	if *quarters > 0 {
		cfg := eree.DefaultDeltaConfig()
		for q := 0; q < *quarters; q++ {
			dl, err := eree.GenerateDelta(pub.Dataset(), cfg, *deltaSeed+int64(q))
			if err != nil {
				return fmt.Errorf("quarter %d: %w", q+1, err)
			}
			added, removed := dl.Jobs(pub.Dataset())
			if err := pub.Advance(dl); err != nil {
				return fmt.Errorf("quarter %d: %w", q+1, err)
			}
			fmt.Fprintf(out, "quarter %d: +%d/-%d jobs, %d births, %d deaths -> epoch %d (%d jobs, %d establishments)\n",
				q+1, added, removed, len(dl.Births), len(dl.Deaths),
				pub.Epoch(), pub.Dataset().NumJobs(), pub.Dataset().NumEstablishments())
		}
	}
	rel, err := pub.ReleaseMarginal(req, eree.NewStream(*seed))
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "mechanism: %s\n", rel.MechanismName)
	fmt.Fprintf(out, "privacy loss: %s\n", rel.Loss)
	fmt.Fprintf(out, "epoch: %d\n", rel.Epoch)
	if rel.Truncation != nil {
		fmt.Fprintf(out, "truncation: removed %d establishments / %d jobs\n",
			rel.Truncation.RemovedEmployers, rel.Truncation.RemovedEdges)
	}

	type row struct {
		cell  int
		noisy float64
	}
	rows := make([]row, 0, len(rel.Noisy))
	for cell, v := range rel.Noisy {
		if rel.Truth.Counts[cell] == 0 && v == 0 {
			continue
		}
		rows = append(rows, row{cell, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].noisy > rows[j].noisy })
	if *top > 0 && len(rows) > *top {
		rows = rows[:*top]
	}
	for _, r := range rows {
		if *truth {
			fmt.Fprintf(out, "%-70s %12.1f  (true %d)\n",
				rel.Query.CellString(r.cell), r.noisy, rel.Truth.Counts[r.cell])
		} else {
			fmt.Fprintf(out, "%-70s %12.1f\n", rel.Query.CellString(r.cell), r.noisy)
		}
	}
	if *stats {
		for _, cs := range pub.CacheStatsByEpoch() {
			fmt.Fprintf(out, "epoch %d cache: %d hits, %d misses, %d evictions\n",
				cs.Epoch, cs.Hits, cs.Misses, cs.Evictions)
		}
	}
	return nil
}
