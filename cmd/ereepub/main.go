// Command ereepub releases a marginal query over a LODES snapshot under a
// chosen privacy mechanism, printing one row per non-empty cell:
// the cell's attribute values, the released count, and (with -truth) the
// confidential true count for comparison.
//
// Usage:
//
//	ereepub -data data/ -attrs place,industry,ownership \
//	        -mech smooth-gamma -alpha 0.1 -eps 2 [-delta 0.05] [-theta 100] \
//	        [-seed 7] [-truth] [-top 20]
//
// If -data is omitted a synthetic snapshot is generated in memory.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ereepub: ")

	dataDir := flag.String("data", "", "dataset directory from lodesgen (default: generate in memory)")
	attrsFlag := flag.String("attrs", "place,industry,ownership", "comma-separated marginal attributes")
	mechFlag := flag.String("mech", "smooth-gamma", "mechanism: log-laplace | smooth-gamma | smooth-laplace | edge-laplace | truncated-laplace")
	alpha := flag.Float64("alpha", 0.1, "establishment-size protection window")
	eps := flag.Float64("eps", 2, "privacy-loss parameter")
	delta := flag.Float64("delta", 0.05, "failure probability (smooth-laplace)")
	theta := flag.Int("theta", 100, "truncation threshold (truncated-laplace)")
	seed := flag.Int64("seed", 7, "noise seed")
	dataSeed := flag.Int64("dataseed", 1, "generator seed when -data is omitted")
	truth := flag.Bool("truth", false, "also print the confidential true counts")
	top := flag.Int("top", 25, "print only the top-N cells by released count (0 = all)")
	flag.Parse()

	var data *eree.Dataset
	var err error
	if *dataDir != "" {
		data, err = eree.LoadCSV(*dataDir)
	} else {
		data, err = eree.Generate(eree.TestDataConfig(), *dataSeed)
	}
	if err != nil {
		log.Fatal(err)
	}

	kind, err := eree.ParseMechanismKind(*mechFlag)
	if err != nil {
		log.Fatal(err)
	}
	req := eree.Request{
		Attrs:     strings.Split(*attrsFlag, ","),
		Mechanism: kind,
		Alpha:     *alpha,
		Eps:       *eps,
		Delta:     *delta,
		Theta:     *theta,
	}
	rel, err := eree.NewPublisher(data).ReleaseMarginal(req, eree.NewStream(*seed))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mechanism: %s\n", rel.MechanismName)
	fmt.Printf("privacy loss: %s\n", rel.Loss)
	if rel.Truncation != nil {
		fmt.Printf("truncation: removed %d establishments / %d jobs\n",
			rel.Truncation.RemovedEmployers, rel.Truncation.RemovedEdges)
	}

	type row struct {
		cell  int
		noisy float64
	}
	rows := make([]row, 0, len(rel.Noisy))
	for cell, v := range rel.Noisy {
		if rel.Truth.Counts[cell] == 0 && v == 0 {
			continue
		}
		rows = append(rows, row{cell, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].noisy > rows[j].noisy })
	if *top > 0 && len(rows) > *top {
		rows = rows[:*top]
	}
	for _, r := range rows {
		if *truth {
			fmt.Printf("%-70s %12.1f  (true %d)\n",
				rel.Query.CellString(r.cell), r.noisy, rel.Truth.Counts[r.cell])
		} else {
			fmt.Printf("%-70s %12.1f\n", rel.Query.CellString(r.cell), r.noisy)
		}
	}
}
