package main

import (
	"strings"
	"testing"
)

// TestRunEndToEnd is the command's smoke test: flag parsing and one
// full release over the in-memory TestDataConfig snapshot.
func TestRunEndToEnd(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-attrs", "industry,ownership",
		"-mech", "smooth-gamma",
		"-alpha", "0.1", "-eps", "2",
		"-seed", "7", "-truth", "-top", "5",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"mechanism: smooth-gamma(alpha=0.1,eps=2)",
		"privacy loss:",
		"epoch: 0",
		"(true ",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "industry="); n == 0 || n > 5 {
		t.Errorf("want 1..5 cell rows, got %d:\n%s", n, got)
	}
}

// TestRunQuarters drives the versioned path: two quarterly advances,
// then a release from epoch 2, with per-epoch cache statistics.
func TestRunQuarters(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-attrs", "place,industry,ownership",
		"-mech", "log-laplace",
		"-alpha", "0.1", "-eps", "2",
		"-quarters", "2", "-deltaseed", "3",
		"-top", "3", "-stats",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"quarter 1:",
		"quarter 2:",
		"-> epoch 2",
		"epoch: 2",
		"epoch 2 cache:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunRejectsBadFlags: unknown mechanisms and attributes surface as
// errors, not panics or releases.
func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mech", "nonsense"}, &out); err == nil {
		t.Error("unknown mechanism accepted")
	}
	if err := run([]string{"-attrs", "favorite-color"}, &out); err == nil {
		t.Error("unknown attribute accepted")
	}
}

// TestRunTruncatedLaplace covers the marginal-level baseline path,
// which bypasses the cell-mechanism pipeline.
func TestRunTruncatedLaplace(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-mech", "truncated-laplace", "-eps", "2", "-theta", "50", "-top", "2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "truncation: removed") {
		t.Errorf("truncated-laplace output missing truncation summary:\n%s", out.String())
	}
}
