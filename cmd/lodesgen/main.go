// Command lodesgen generates a synthetic LODES snapshot and writes it to
// a directory as CSV (places.csv, establishments.csv, jobs.csv).
//
// Usage:
//
//	lodesgen -out data/ [-seed 1] [-establishments 20000] [-places 60]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lodesgen: ")

	out := flag.String("out", "", "output directory (required)")
	seed := flag.Int64("seed", 1, "generator seed")
	establishments := flag.Int("establishments", 0, "number of establishments (default: config default)")
	places := flag.Int("places", 0, "number of Census places (default: config default)")
	small := flag.Bool("small", false, "use the small test-scale configuration")
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := eree.DefaultDataConfig()
	if *small {
		cfg = eree.TestDataConfig()
	}
	if *establishments > 0 {
		cfg.NumEstablishments = *establishments
	}
	if *places > 0 {
		cfg.NumPlaces = *places
	}

	data, err := eree.Generate(cfg, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := data.WriteCSV(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d places, %d establishments, %d jobs (max establishment %d)\n",
		*out, data.NumPlaces(), data.NumEstablishments(), data.NumJobs(), data.MaxEmployment())
}
