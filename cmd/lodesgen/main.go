// Command lodesgen generates a synthetic LODES snapshot and writes it to
// a directory as CSV (places.csv, establishments.csv, jobs.csv).
//
// Usage:
//
//	lodesgen -out data/ [-seed 1] [-establishments 20000] [-places 60]
//	lodesgen -out data/ -national [-chunk 1048576]
//	lodesgen -out data/ -delta data/q1 [-delta-seed 2]
//
// With -national (or -stream) the job relation is generated and written
// chunk-wise: the full table is never held in memory, so the national
// configuration (~7M establishments, ~130M jobs) is writable on a
// laptop-sized heap. Streamed output is byte-identical to the
// materialized path for the same configuration and seed.
//
// With -delta DIR one quarter of synthetic churn is additionally drawn
// against the generated snapshot and exported to DIR as delta CSV
// (delta_deaths.csv, delta_separations.csv, delta_hires.csv,
// delta_births.csv, delta_birth_jobs.csv). Loading it back with
// eree.LoadDeltaCSV and applying it to the snapshot reproduces the
// successor quarter bit-identically. Deltas require the materialized
// path (-delta is incompatible with -national/-stream).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lodesgen: ")

	out := flag.String("out", "", "output directory (required)")
	seed := flag.Int64("seed", 1, "generator seed")
	establishments := flag.Int("establishments", 0, "number of establishments (default: config default)")
	places := flag.Int("places", 0, "number of Census places (default: config default)")
	small := flag.Bool("small", false, "use the small test-scale configuration")
	national := flag.Bool("national", false, "use the national-scale configuration (~7M establishments, ~130M jobs) and stream the output")
	stream := flag.Bool("stream", false, "stream job rows to disk chunk-wise instead of materializing the table")
	chunk := flag.Int("chunk", 0, "rows per streamed chunk (default: 1<<20; implies -stream)")
	deltaDir := flag.String("delta", "", "also export one generated quarter of churn to this directory as delta CSV")
	deltaSeed := flag.Int64("delta-seed", 2, "delta generator seed (with -delta)")
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *small && *national {
		log.Fatal("-small and -national are mutually exclusive")
	}
	if *deltaDir != "" && (*national || *stream || *chunk > 0) {
		log.Fatal("-delta requires the materialized path (incompatible with -national/-stream/-chunk)")
	}

	cfg := eree.DefaultDataConfig()
	switch {
	case *small:
		cfg = eree.TestDataConfig()
	case *national:
		cfg = eree.NationalDataConfig()
	}
	if *establishments > 0 {
		cfg.NumEstablishments = *establishments
	}
	if *places > 0 {
		cfg.NumPlaces = *places
	}

	if *national || *stream || *chunk > 0 {
		nPlaces, nEsts, nJobs, err := eree.GenerateCSV(cfg, *seed, *out, *chunk)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s (streamed): %d places, %d establishments, %d jobs\n",
			*out, nPlaces, nEsts, nJobs)
		return
	}

	data, err := eree.Generate(cfg, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := data.WriteCSV(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d places, %d establishments, %d jobs (max establishment %d)\n",
		*out, data.NumPlaces(), data.NumEstablishments(), data.NumJobs(), data.MaxEmployment())

	if *deltaDir != "" {
		dl, err := eree.GenerateDelta(data, eree.DefaultDeltaConfig(), *deltaSeed)
		if err != nil {
			log.Fatal(err)
		}
		if err := eree.WriteDeltaCSV(data, dl, *deltaDir); err != nil {
			log.Fatal(err)
		}
		added, removed := dl.Jobs(data)
		fmt.Printf("wrote %s: %d deaths, %d separations, %d hires, %d births (+%d/-%d jobs)\n",
			*deltaDir, len(dl.Deaths), len(dl.Separations), len(dl.Hires), len(dl.Births),
			added, removed)
	}
}
