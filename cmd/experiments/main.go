// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 10 and Appendix C) on a synthetic LODES snapshot.
//
// Usage:
//
//	experiments [-all] [-table1] [-table2] [-fig1 ... -fig5] [-truncated]
//	            [-seed 1] [-trials 20] [-small]
//
// Each figure prints as fixed-width grids: one block per mechanism, rows
// are α, columns are ε, first overall and then per place-size stratum.
// Values are L1-error ratios versus the input-noise-infusion baseline
// (lower is better; < 1 beats SDL) or Spearman correlations against the
// SDL ranking (higher is better).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	all := flag.Bool("all", false, "run everything")
	table1 := flag.Bool("table1", false, "Table 1: definitions vs requirements")
	table2 := flag.Bool("table2", false, "Table 2: minimum eps given alpha and delta")
	fig1 := flag.Bool("fig1", false, "Figure 1: L1 ratio, Workload 1")
	fig2 := flag.Bool("fig2", false, "Figure 2: Spearman, Ranking 1")
	fig3 := flag.Bool("fig3", false, "Figure 3: L1 ratio, single (sex x education) queries")
	fig4 := flag.Bool("fig4", false, "Figure 4: L1 ratio, full worker x workplace marginal")
	fig5 := flag.Bool("fig5", false, "Figure 5: Spearman, females with college degrees")
	truncated := flag.Bool("truncated", false, "Finding 6: Truncated Laplace sweep")
	verify := flag.Bool("verify", false, "check the paper's six findings programmatically (PASS/FAIL)")
	seed := flag.Int64("seed", 1, "experiment seed")
	trials := flag.Int("trials", eval.PaperTrials, "trials per grid point")
	small := flag.Bool("small", false, "use the small test-scale dataset")
	csvDir := flag.String("csv", "", "also write each artifact as CSV into this directory")
	flag.Parse()

	if !(*all || *table1 || *table2 || *fig1 || *fig2 || *fig3 || *fig4 || *fig5 || *truncated || *verify) {
		*all = true
	}

	if *all || *table1 {
		fmt.Print(eree.Table1Text(), "\n")
	}
	if *all || *table2 {
		fmt.Print(eree.Table2Text(), "\n")
	}

	needHarness := *all || *fig1 || *fig2 || *fig3 || *fig4 || *fig5 || *truncated || *verify
	if !needHarness {
		return
	}

	cfg := eree.DefaultDataConfig()
	if *small {
		cfg = eree.TestDataConfig()
	}
	start := time.Now()
	data, err := eree.Generate(cfg, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d places, %d establishments, %d jobs (generated in %v)\n\n",
		data.NumPlaces(), data.NumEstablishments(), data.NumJobs(), time.Since(start).Round(time.Millisecond))

	h, err := eree.NewHarness(data, eree.NewStream(*seed+1), *trials)
	if err != nil {
		log.Fatal(err)
	}
	// One sharded pass over the dataset computes every workload marginal
	// the figures and findings share; the grids below then only pay for
	// noise.
	t0 := time.Now()
	if err := h.PrefetchWorkloads(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload marginals prefetched in %v\n\n", time.Since(t0).Round(time.Millisecond))

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	writeCSV := func(name string, write func(w io.Writer) error) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			log.Fatal(err)
		}
		if err := write(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	run := func(enabled bool, f func() (*eree.FigureResult, error)) {
		if !enabled {
			return
		}
		t0 := time.Now()
		res, err := f()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Printf("(%v)\n\n", time.Since(t0).Round(time.Millisecond))
		writeCSV(res.ID+".csv", res.WriteCSV)
	}
	run(*all || *fig1, h.Figure1)
	run(*all || *fig2, h.Figure2)
	run(*all || *fig3, h.Figure3)
	run(*all || *fig4, h.Figure4)
	run(*all || *fig5, h.Figure5)

	if *all || *truncated {
		t0 := time.Now()
		pts, err := h.Finding6()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(eval.FormatTruncated(pts))
		fmt.Printf("(%v)\n\n", time.Since(t0).Round(time.Millisecond))
		writeCSV("finding6.csv", func(w io.Writer) error {
			return eval.WriteTruncatedCSV(w, pts)
		})
	}

	if *all || *verify {
		t0 := time.Now()
		findings, err := h.VerifyFindings()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(eval.FormatFindings(findings))
		fmt.Printf("(%v)\n", time.Since(t0).Round(time.Millisecond))
		failed := 0
		for _, f := range findings {
			if !f.Passed {
				failed++
			}
		}
		if failed > 0 {
			log.Fatalf("%d of %d findings FAILED", failed, len(findings))
		}
	}
}
