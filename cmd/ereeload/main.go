// Command ereeload drives an ereeserve instance with a deterministic
// Zipf-mixed release workload and reports sustained throughput and
// latency percentiles as one JSON summary.
//
// Usage:
//
//	ereeload -url http://localhost:8080 -key tenant-alpha-key \
//	         [-n 2000] [-conc 8] [-seed 1] [-zipf 1.1] [-eps 0.5] \
//	         [-retries 3] [-retry-base 100ms] [-retry-max 2s]
//
// -url takes a comma-separated endpoint list; attempt a of any request
// targets endpoints[a mod len] — deterministic failover that walks the
// list in a fixed order, so a run against a primary/follower pair
// retries the follower's 503-with-hint against the next endpoint
// rather than hammering one node.
//
// The whole request sequence is planned up front from -seed: request i
// queries the marginal drawn by a Zipf(-zipf) pick over a fixed query
// catalog and carries explicit sequence number i. The plan — and with
// it every noisy count the server returns — is therefore reproducible
// run over run against the same server configuration; only the timings
// differ. That determinism extends to failure handling: 5xx and
// transport errors are retried with exponential backoff whose jitter is
// drawn from the plan stream (never the wall clock), and every retry
// resends the identical body with the same explicit seq, so a durable
// server deduplicates instead of double-charging. Popularity concentrates on the catalog head the way real
// query traffic does, so the server's marginal cache sees a realistic
// hit/miss mix.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dist"
	"repro/internal/lodes"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ereeload: %v\n", err)
		os.Exit(1)
	}
}

// catalog is the fixed query mix, most-popular first: the workplace
// marginal the paper's workload 1 centers on, then successively less
// popular cuts.
func catalog() [][]string {
	return [][]string{
		{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership},
		{lodes.AttrIndustry},
		{lodes.AttrSex},
		{lodes.AttrIndustry, lodes.AttrOwnership},
		{lodes.AttrAge},
		{lodes.AttrOwnership},
		{lodes.AttrRace, lodes.AttrEthnicity},
		{lodes.AttrEducation},
	}
}

// planEntry is one pre-planned request: explicit seq i with a
// catalog query drawn by the Zipf mix. Retry is the request's private
// backoff stream — jitter comes from the plan, never the clock, so a
// rerun against a flaky server sleeps the same schedule.
type planEntry struct {
	Seq   int64
	Attrs []string
	Body  []byte
	Retry *dist.Stream
}

// buildPlan lays out the entire request sequence deterministically:
// draw i comes from the plan stream's index i, so the plan is a pure
// function of (seed, n, s, eps) — independent of workers and timing.
func buildPlan(seed int64, n int, s, eps float64) []planEntry {
	cat := catalog()
	// Zipf over catalog ranks: weight(k) ∝ 1/(k+1)^s, picked by inverse
	// CDF so the draw needs one uniform variate.
	cum := make([]float64, len(cat))
	var total float64
	for k := range cat {
		total += 1 / math.Pow(float64(k+1), s)
		cum[k] = total
	}
	root := dist.NewStreamFromSeed(seed)
	plan := make([]planEntry, n)
	for i := range plan {
		entry := root.SplitIndex("plan", i)
		u := entry.Float64() * total
		k := sort.SearchFloat64s(cum, u)
		if k == len(cum) {
			k--
		}
		body, err := json.Marshal(struct {
			Attrs     []string `json:"attrs"`
			Mechanism string   `json:"mechanism"`
			Alpha     float64  `json:"alpha"`
			Eps       float64  `json:"eps"`
			Seq       int64    `json:"seq"`
		}{cat[k], "smooth-gamma", 0.1, eps, int64(i)})
		if err != nil {
			panic(err) // fixed struct; cannot fail
		}
		plan[i] = planEntry{Seq: int64(i), Attrs: cat[k], Body: body, Retry: entry.Split("retry")}
	}
	return plan
}

// backoffFor is the deterministic retry schedule: exponential growth
// with full-range jitter drawn from the request's plan stream, capped.
// Attempt a of request i sleeps base·2^a·(0.5+u) where u is the Float64
// of the (i, "retry", a) stream — a pure function of the plan seed, so
// two runs of the same plan against the same flaky server back off
// identically. Retried requests resend the identical body (same seq):
// the server's replay cache deduplicates a charge that did land, so a
// retry can never double-spend.
func backoffFor(e planEntry, attempt int, base, max time.Duration) time.Duration {
	u := e.Retry.SplitIndex("attempt", attempt).Float64()
	d := time.Duration(float64(base) * math.Pow(2, float64(attempt)) * (0.5 + u))
	if d > max {
		return max
	}
	return d
}

// retryDelay is the sleep before attempt+1: the deterministic backoff,
// floored by the server's Retry-After when the refused attempt carried
// one. The floor deliberately overrides the -retry-max cap — a server
// asking for N seconds of quiet gets them — while jitter still comes
// only from the plan stream, never the clock, so two runs against the
// same shedding server sleep the same schedule.
func retryDelay(e planEntry, attempt int, base, max, retryAfter time.Duration) time.Duration {
	d := backoffFor(e, attempt, base, max)
	if retryAfter > d {
		return retryAfter
	}
	return d
}

// retryAfterOf parses an attempt's Retry-After response header as
// delay-seconds (the only form ereeserve emits); absent or malformed
// means no floor.
func retryAfterOf(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// endpointFor picks the target of one attempt: deterministic failover
// walks the endpoint list in order, one step per retry.
func endpointFor(endpoints []string, attempt int) string {
	return endpoints[attempt%len(endpoints)]
}

// transient reports whether an attempt's outcome warrants a retry:
// transport failure (code 0) or a 5xx — the server shedding load,
// draining, or briefly away. 4xx are final: the request itself is
// wrong, and resending it cannot help.
func transient(code int) bool {
	return code == 0 || code >= 500
}

// summary is the run's JSON report. Statuses counts each request's
// final status; Retries counts every extra attempt across the run, and
// Errors the requests that never got an HTTP status even after their
// retry budget.
type summary struct {
	Requests int            `json:"requests"`
	Errors   int            `json:"errors"`
	Retries  int            `json:"retries"`
	Statuses map[string]int `json:"statuses"`
	Seconds  float64        `json:"seconds"`
	QPS      float64        `json:"qps"`
	P50Ms    float64        `json:"p50_ms"`
	P99Ms    float64        `json:"p99_ms"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ereeload", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8080", "comma-separated ereeserve base URL(s); retries walk the list")
	key := fs.String("key", "tenant-alpha-key", "tenant API key")
	n := fs.Int("n", 2000, "total requests")
	conc := fs.Int("conc", 8, "concurrent client workers")
	seed := fs.Int64("seed", 1, "plan seed")
	zipf := fs.Float64("zipf", 1.1, "Zipf exponent of the query-popularity mix")
	eps := fs.Float64("eps", 0.5, "privacy-loss parameter per release (Smooth Gamma needs eps > 5·ln(1+alpha))")
	retries := fs.Int("retries", 3, "extra attempts per request on 5xx or transport error")
	retryBase := fs.Duration("retry-base", 100*time.Millisecond, "first retry backoff (doubles per attempt, jittered from the plan seed)")
	retryMax := fs.Duration("retry-max", 2*time.Second, "backoff ceiling")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return fmt.Errorf("invalid arguments")
	}
	if *n < 1 || *conc < 1 {
		return fmt.Errorf("-n and -conc must be positive")
	}
	if *retries < 0 {
		return fmt.Errorf("-retries must be non-negative")
	}
	var endpoints []string
	for _, e := range strings.Split(*url, ",") {
		if e = strings.TrimSpace(e); e != "" {
			endpoints = append(endpoints, strings.TrimRight(e, "/"))
		}
	}
	if len(endpoints) == 0 {
		return fmt.Errorf("-url must name at least one endpoint")
	}

	plan := buildPlan(*seed, *n, *zipf, *eps)
	client := &http.Client{Timeout: 30 * time.Second}
	lat := make([]time.Duration, len(plan))
	status := make([]int, len(plan))
	var next, retried atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(plan) {
					return
				}
				// Attempts resend the identical body — same explicit seq —
				// so a charge that landed before a lost response is served
				// from the server's replay cache, not charged again.
				for a := 0; ; a++ {
					t0 := time.Now()
					code := 0
					var retryAfter time.Duration
					req, err := http.NewRequest("POST", endpointFor(endpoints, a)+"/v1/release", bytes.NewReader(plan[i].Body))
					if err == nil {
						req.Header.Set("X-API-Key", *key)
						if resp, err := client.Do(req); err == nil {
							io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
							code = resp.StatusCode
							retryAfter = retryAfterOf(resp)
						}
					}
					if transient(code) && a < *retries {
						retried.Add(1)
						time.Sleep(retryDelay(plan[i], a, *retryBase, *retryMax, retryAfter))
						continue
					}
					lat[i] = time.Since(t0)
					status[i] = code
					break
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := summary{
		Requests: len(plan),
		Retries:  int(retried.Load()),
		Statuses: make(map[string]int),
		Seconds:  elapsed.Seconds(),
	}
	ok := make([]time.Duration, 0, len(plan))
	for i := range plan {
		if status[i] == 0 {
			sum.Errors++
			continue
		}
		sum.Statuses[fmt.Sprintf("%d", status[i])]++
		if status[i] == http.StatusOK {
			ok = append(ok, lat[i])
		}
	}
	if elapsed > 0 {
		sum.QPS = float64(len(plan)-sum.Errors) / elapsed.Seconds()
	}
	if len(ok) > 0 {
		sort.Slice(ok, func(i, j int) bool { return ok[i] < ok[j] })
		sum.P50Ms = float64(ok[len(ok)/2].Microseconds()) / 1000
		sum.P99Ms = float64(ok[len(ok)*99/100].Microseconds()) / 1000
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}
