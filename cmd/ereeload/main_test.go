package main

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/cmd/ereeserve/config"
	"repro/cmd/ereeserve/server"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
)

// TestPlanPinned pins the first draws of the default plan: the load mix
// is part of the benchmark's reproducibility surface, so a change to
// the stream derivation or the catalog must fail a test, not silently
// shift every published number.
func TestPlanPinned(t *testing.T) {
	plan := buildPlan(1, 12, 1.1, 0.1)
	w1 := []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership}
	want := [][]string{
		{lodes.AttrSex}, {lodes.AttrAge}, {lodes.AttrSex}, {lodes.AttrAge},
		w1, w1, {lodes.AttrAge}, w1, w1, {lodes.AttrSex}, w1, {lodes.AttrSex},
	}
	for i := range want {
		if !reflect.DeepEqual(plan[i].Attrs, want[i]) {
			t.Errorf("plan[%d].Attrs = %v, want %v", i, plan[i].Attrs, want[i])
		}
		if plan[i].Seq != int64(i) {
			t.Errorf("plan[%d].Seq = %d, want %d", i, plan[i].Seq, i)
		}
	}
	// The plan is a pure function of its inputs: same seed, same bytes.
	again := buildPlan(1, 12, 1.1, 0.1)
	for i := range plan {
		if string(plan[i].Body) != string(again[i].Body) {
			t.Fatalf("plan[%d] not reproducible:\n  a: %s\n  b: %s", i, plan[i].Body, again[i].Body)
		}
	}
}

// TestPlanZipfSkew: request frequency must fall with catalog rank — the
// whole point of the Zipf mix is a popularity-skewed cache workload.
func TestPlanZipfSkew(t *testing.T) {
	plan := buildPlan(1, 2000, 1.1, 0.1)
	key := func(attrs []string) string { return strings.Join(attrs, ",") }
	freq := make(map[string]int)
	for _, p := range plan {
		freq[key(p.Attrs)]++
	}
	cat := catalog()
	if len(freq) != len(cat) {
		t.Fatalf("plan uses %d catalog entries, want all %d", len(freq), len(cat))
	}
	for k := 1; k < len(cat); k++ {
		if freq[key(cat[k])] > freq[key(cat[k-1])] {
			t.Errorf("rank %d (%v) drew %d > rank %d (%v) %d: mix is not popularity-ordered",
				k, cat[k], freq[key(cat[k])], k-1, cat[k-1], freq[key(cat[k-1])])
		}
	}
	if head := freq[key(cat[0])]; head < len(plan)/4 {
		t.Errorf("head query drew only %d of %d requests; Zipf mix too flat", head, len(plan))
	}
}

// TestPlanBodies: every planned body is a valid wire request carrying
// its own index as the explicit sequence number.
func TestPlanBodies(t *testing.T) {
	for i, p := range buildPlan(7, 50, 1.3, 0.25) {
		var w struct {
			Attrs     []string `json:"attrs"`
			Mechanism string   `json:"mechanism"`
			Alpha     float64  `json:"alpha"`
			Eps       float64  `json:"eps"`
			Seq       int64    `json:"seq"`
		}
		if err := json.Unmarshal(p.Body, &w); err != nil {
			t.Fatalf("plan[%d]: %v", i, err)
		}
		if w.Seq != int64(i) || w.Eps != 0.25 || w.Mechanism != "smooth-gamma" {
			t.Fatalf("plan[%d] body = %s", i, p.Body)
		}
	}
}

// TestRunAgainstServer drives a real in-process ereeserve and checks
// the summary: every request answered 200, QPS and percentiles
// populated.
func TestRunAgainstServer(t *testing.T) {
	gen := lodes.TestConfig()
	gen.NumEstablishments = 200
	data := lodes.MustGenerate(gen, dist.NewStreamFromSeed(1))
	reg, err := config.Demo().BuildRegistry()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(core.NewPublisher(data), reg, server.Options{NoiseSeed: 7})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	var out strings.Builder
	err = run([]string{
		"-url", hs.URL, "-key", "tenant-alpha-key",
		"-n", "40", "-conc", "4", "-seed", "1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out.String())
	}
	if sum.Requests != 40 || sum.Errors != 0 {
		t.Fatalf("summary = %+v, want 40 requests / 0 errors", sum)
	}
	if sum.Statuses["200"] != 40 {
		t.Fatalf("statuses = %v, want 40× 200", sum.Statuses)
	}
	if sum.QPS <= 0 || sum.P50Ms <= 0 || sum.P99Ms < sum.P50Ms {
		t.Fatalf("latency summary implausible: %+v", sum)
	}
}
