package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/cmd/ereeserve/config"
	"repro/cmd/ereeserve/server"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/lodes"
)

// TestPlanPinned pins the first draws of the default plan: the load mix
// is part of the benchmark's reproducibility surface, so a change to
// the stream derivation or the catalog must fail a test, not silently
// shift every published number.
func TestPlanPinned(t *testing.T) {
	plan := buildPlan(1, 12, 1.1, 0.1)
	w1 := []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership}
	want := [][]string{
		{lodes.AttrSex}, {lodes.AttrAge}, {lodes.AttrSex}, {lodes.AttrAge},
		w1, w1, {lodes.AttrAge}, w1, w1, {lodes.AttrSex}, w1, {lodes.AttrSex},
	}
	for i := range want {
		if !reflect.DeepEqual(plan[i].Attrs, want[i]) {
			t.Errorf("plan[%d].Attrs = %v, want %v", i, plan[i].Attrs, want[i])
		}
		if plan[i].Seq != int64(i) {
			t.Errorf("plan[%d].Seq = %d, want %d", i, plan[i].Seq, i)
		}
	}
	// The plan is a pure function of its inputs: same seed, same bytes.
	again := buildPlan(1, 12, 1.1, 0.1)
	for i := range plan {
		if string(plan[i].Body) != string(again[i].Body) {
			t.Fatalf("plan[%d] not reproducible:\n  a: %s\n  b: %s", i, plan[i].Body, again[i].Body)
		}
	}
}

// TestPlanZipfSkew: request frequency must fall with catalog rank — the
// whole point of the Zipf mix is a popularity-skewed cache workload.
func TestPlanZipfSkew(t *testing.T) {
	plan := buildPlan(1, 2000, 1.1, 0.1)
	key := func(attrs []string) string { return strings.Join(attrs, ",") }
	freq := make(map[string]int)
	for _, p := range plan {
		freq[key(p.Attrs)]++
	}
	cat := catalog()
	if len(freq) != len(cat) {
		t.Fatalf("plan uses %d catalog entries, want all %d", len(freq), len(cat))
	}
	for k := 1; k < len(cat); k++ {
		if freq[key(cat[k])] > freq[key(cat[k-1])] {
			t.Errorf("rank %d (%v) drew %d > rank %d (%v) %d: mix is not popularity-ordered",
				k, cat[k], freq[key(cat[k])], k-1, cat[k-1], freq[key(cat[k-1])])
		}
	}
	if head := freq[key(cat[0])]; head < len(plan)/4 {
		t.Errorf("head query drew only %d of %d requests; Zipf mix too flat", head, len(plan))
	}
}

// TestPlanBodies: every planned body is a valid wire request carrying
// its own index as the explicit sequence number.
func TestPlanBodies(t *testing.T) {
	for i, p := range buildPlan(7, 50, 1.3, 0.25) {
		var w struct {
			Attrs     []string `json:"attrs"`
			Mechanism string   `json:"mechanism"`
			Alpha     float64  `json:"alpha"`
			Eps       float64  `json:"eps"`
			Seq       int64    `json:"seq"`
		}
		if err := json.Unmarshal(p.Body, &w); err != nil {
			t.Fatalf("plan[%d]: %v", i, err)
		}
		if w.Seq != int64(i) || w.Eps != 0.25 || w.Mechanism != "smooth-gamma" {
			t.Fatalf("plan[%d] body = %s", i, p.Body)
		}
	}
}

// TestBackoffDeterministic: the retry schedule is a pure function of
// the plan seed — two independently built plans sleep identically,
// different requests and attempts jitter independently, growth is
// exponential with full jitter in [0.5, 1.5)·base·2^a, and the cap
// holds.
func TestBackoffDeterministic(t *testing.T) {
	base, max := 10*time.Millisecond, 2*time.Second
	a := buildPlan(1, 8, 1.1, 0.5)
	b := buildPlan(1, 8, 1.1, 0.5)
	seen := make(map[time.Duration]bool)
	for i := range a {
		for attempt := 0; attempt < 4; attempt++ {
			d1 := backoffFor(a[i], attempt, base, max)
			d2 := backoffFor(b[i], attempt, base, max)
			if d1 != d2 {
				t.Fatalf("req %d attempt %d: %v vs %v across identical plans", i, attempt, d1, d2)
			}
			scale := time.Duration(1 << attempt)
			if lo, hi := base*scale/2, base*scale*3/2; d1 < lo || d1 >= hi {
				t.Errorf("req %d attempt %d: backoff %v outside [%v, %v)", i, attempt, d1, lo, hi)
			}
			seen[d1] = true
		}
	}
	if len(seen) < 20 {
		t.Errorf("only %d distinct backoffs across 32 (request, attempt) pairs; jitter is not per-pair", len(seen))
	}
	if d := backoffFor(a[0], 30, base, max); d != max {
		t.Errorf("attempt 30 backoff = %v, want the %v cap", d, max)
	}
}

// TestRunRetriesTransient: a server that 503s every first attempt must
// end with all-200 statuses, one retry per request, zero errors — and
// every retry must carry byte-identical bodies (same seq), the contract
// that lets a durable server deduplicate instead of double-charging.
func TestRunRetriesTransient(t *testing.T) {
	var mu sync.Mutex
	firstBody := make(map[int64][]byte)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var wire struct {
			Seq int64 `json:"seq"`
		}
		if err := json.Unmarshal(body, &wire); err != nil {
			t.Errorf("bad body: %v", err)
		}
		mu.Lock()
		prev, again := firstBody[wire.Seq]
		if !again {
			firstBody[wire.Seq] = body
		}
		mu.Unlock()
		if !again {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		if string(prev) != string(body) {
			t.Errorf("retry of seq %d changed the body:\n  first: %s\n  retry: %s", wire.Seq, prev, body)
		}
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	defer hs.Close()

	var out strings.Builder
	err := run([]string{
		"-url", hs.URL, "-n", "20", "-conc", "4", "-seed", "1",
		"-retries", "3", "-retry-base", "1ms", "-retry-max", "10ms",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out.String())
	}
	if sum.Statuses["200"] != 20 || sum.Errors != 0 {
		t.Fatalf("summary = %+v, want 20× 200 and 0 errors", sum)
	}
	if sum.Retries != 20 {
		t.Fatalf("retries = %d, want exactly one per request", sum.Retries)
	}
}

// TestRunRetriesExhausted: a permanently failing server burns the whole
// retry budget and the summary says so — final status recorded, retry
// count = retries × requests, no hang.
func TestRunRetriesExhausted(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer hs.Close()

	var out strings.Builder
	if err := run([]string{
		"-url", hs.URL, "-n", "5", "-conc", "2", "-seed", "1",
		"-retries", "2", "-retry-base", "1ms", "-retry-max", "5ms",
	}, &out); err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out.String())
	}
	if sum.Statuses["500"] != 5 {
		t.Fatalf("statuses = %v, want 5× 500", sum.Statuses)
	}
	if sum.Retries != 10 {
		t.Fatalf("retries = %d, want 2 per request", sum.Retries)
	}
}

// TestRunNoRetryOnClientError: 4xx is final — resending a malformed or
// over-budget request cannot help, and retrying a 429 would just spend
// the tail of an exhausted budget faster.
func TestRunNoRetryOnClientError(t *testing.T) {
	var hits atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		hits.Add(1)
		http.Error(w, `{"error":"privacy budget exhausted"}`, http.StatusTooManyRequests)
	}))
	defer hs.Close()

	var out strings.Builder
	if err := run([]string{
		"-url", hs.URL, "-n", "6", "-conc", "3", "-seed", "1",
		"-retries", "5", "-retry-base", "1ms",
	}, &out); err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out.String())
	}
	if sum.Retries != 0 || sum.Statuses["429"] != 6 {
		t.Fatalf("summary = %+v, want 6× 429 and no retries", sum)
	}
	if hits.Load() != 6 {
		t.Fatalf("server saw %d requests, want exactly 6", hits.Load())
	}
}

// TestRunAgainstServer drives a real in-process ereeserve and checks
// the summary: every request answered 200, QPS and percentiles
// populated.
func TestRunAgainstServer(t *testing.T) {
	gen := lodes.TestConfig()
	gen.NumEstablishments = 200
	data := lodes.MustGenerate(gen, dist.NewStreamFromSeed(1))
	reg, err := config.Demo().BuildRegistry()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(core.NewPublisher(data), reg, server.Options{NoiseSeed: 7})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	var out strings.Builder
	err = run([]string{
		"-url", hs.URL, "-key", "tenant-alpha-key",
		"-n", "40", "-conc", "4", "-seed", "1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out.String())
	}
	if sum.Requests != 40 || sum.Errors != 0 {
		t.Fatalf("summary = %+v, want 40 requests / 0 errors", sum)
	}
	if sum.Statuses["200"] != 40 {
		t.Fatalf("statuses = %v, want 40× 200", sum.Statuses)
	}
	if sum.QPS <= 0 || sum.P50Ms <= 0 || sum.P99Ms < sum.P50Ms {
		t.Fatalf("latency summary implausible: %+v", sum)
	}
}

// TestRetryDelayRetryAfterFloor pins the satellite contract: a 503's
// Retry-After is a floor under the deterministic backoff — never a
// replacement for it, never a jitter source. Below the planned backoff
// it changes nothing; above it, it wins even past the -retry-max cap.
func TestRetryDelayRetryAfterFloor(t *testing.T) {
	base, max := 10*time.Millisecond, 2*time.Second
	plan := buildPlan(1, 4, 1.1, 0.5)
	for i := range plan {
		for attempt := 0; attempt < 4; attempt++ {
			planned := backoffFor(plan[i], attempt, base, max)
			if got := retryDelay(plan[i], attempt, base, max, 0); got != planned {
				t.Fatalf("req %d attempt %d: no Retry-After changed the delay: %v != %v", i, attempt, got, planned)
			}
			if got := retryDelay(plan[i], attempt, base, max, planned/2); got != planned {
				t.Fatalf("req %d attempt %d: sub-backoff Retry-After overrode the plan: %v != %v", i, attempt, got, planned)
			}
			if got := retryDelay(plan[i], attempt, base, max, 3*time.Second); got != 3*time.Second {
				t.Fatalf("req %d attempt %d: Retry-After floor not honored past the cap: %v", i, attempt, got)
			}
		}
	}
	// The floored schedule is still deterministic: identical plans,
	// identical delays.
	again := buildPlan(1, 4, 1.1, 0.5)
	for i := range plan {
		if retryDelay(plan[i], 1, base, max, time.Second) != retryDelay(again[i], 1, base, max, time.Second) {
			t.Fatalf("req %d: floored delay not reproducible across identical plans", i)
		}
	}
}

// TestRetryAfterParsing: only well-formed delay-seconds headers floor
// the backoff.
func TestRetryAfterParsing(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	cases := map[string]time.Duration{
		"":     0,
		"2":    2 * time.Second,
		"0":    0,
		"-3":   0,
		"soon": 0,
		"1.5":  0,
	}
	for v, want := range cases {
		if got := retryAfterOf(mk(v)); got != want {
			t.Errorf("retryAfterOf(%q) = %v, want %v", v, got, want)
		}
	}
	if got := retryAfterOf(nil); got != 0 {
		t.Errorf("retryAfterOf(nil) = %v, want 0", got)
	}
}

// TestRunFailsOverAcrossEndpoints: with a dead first endpoint and a
// healthy second, every request succeeds on its first retry — the
// deterministic failover walk endpoints[attempt mod len] — and the
// healthy endpoint sees each body exactly once.
func TestRunFailsOverAcrossEndpoints(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Retry-After", "0")
		http.Error(w, `{"error":"read-only follower"}`, http.StatusServiceUnavailable)
	}))
	defer down.Close()
	var healthyHits atomic.Int64
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		healthyHits.Add(1)
		fmt.Fprintln(w, `{"ok":true}`)
	}))
	defer up.Close()

	var out strings.Builder
	if err := run([]string{
		"-url", down.URL + "," + up.URL, "-n", "12", "-conc", "3", "-seed", "1",
		"-retries", "3", "-retry-base", "1ms", "-retry-max", "5ms",
	}, &out); err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal([]byte(out.String()), &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out.String())
	}
	if sum.Statuses["200"] != 12 || sum.Errors != 0 {
		t.Fatalf("summary = %+v, want 12× 200 via failover", sum)
	}
	if sum.Retries != 12 {
		t.Fatalf("retries = %d, want exactly one per request (first endpoint sheds, second serves)", sum.Retries)
	}
	if healthyHits.Load() != 12 {
		t.Fatalf("healthy endpoint saw %d requests, want 12", healthyHits.Load())
	}
	if got := endpointFor([]string{"a", "b", "c"}, 4); got != "b" {
		t.Fatalf("endpointFor walk = %q at attempt 4 of 3 endpoints, want \"b\"", got)
	}
}
