package eree_test

import (
	"fmt"
	"log"

	eree "repro"
)

// Generate a synthetic snapshot and release a provably private marginal.
func Example() {
	data, err := eree.Generate(eree.TestDataConfig(), 42)
	if err != nil {
		log.Fatal(err)
	}
	pub := eree.NewPublisher(data)
	rel, err := pub.ReleaseMarginal(eree.Request{
		Attrs:     eree.WorkplaceAttrs(),
		Mechanism: eree.MechSmoothGamma,
		Alpha:     0.1,
		Eps:       2,
	}, eree.NewStream(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rel.Loss)
	fmt.Println(len(rel.Noisy) == rel.Query.NumCells())
	// Output:
	// ER-EE-privacy(alpha=0.1, eps=2)
	// true
}

// Worker attributes shift the guarantee to weak ER-EE privacy and charge
// the d·ε marginal surcharge.
func ExamplePublisher_weakPrivacy() {
	data, err := eree.Generate(eree.TestDataConfig(), 42)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := eree.NewPublisher(data).ReleaseMarginal(eree.Request{
		Attrs:     []string{eree.AttrPlace, eree.AttrSex},
		Mechanism: eree.MechSmoothLaplace,
		Alpha:     0.1,
		Eps:       1.5,
		Delta:     0.05,
	}, eree.NewStream(3))
	if err != nil {
		log.Fatal(err)
	}
	// |sex| = 2, so the marginal costs 2 * 1.5 = 3.
	fmt.Println(rel.Loss)
	// Output:
	// Weak ER-EE privacy(alpha=0.1, eps=3, delta=0.1)
}

// Table 1: which definitions satisfy which statutory requirements.
func ExampleSatisfies() {
	fmt.Println(eree.Satisfies(eree.InputNoiseInfusion, 0)) // individuals
	fmt.Println(eree.Satisfies(eree.StrongEREE, 1))         // employer size
	fmt.Println(eree.Satisfies(eree.WeakEREE, 1))           // employer size
	// Output:
	// No
	// Yes
	// Yes*
}

// Allocate one privacy budget across several planned releases.
func ExamplePlanReleases() {
	plan, err := eree.PlanReleases(eree.WeakEREE, 0.1, 8, 0, []eree.ReleaseRequest{
		{Name: "workplace", Weight: 1, WorkerDomainSize: 1},
		{Name: "by-sex", Weight: 1, WorkerDomainSize: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range plan.Releases {
		fmt.Printf("%s: marginal eps %.1f, per-cell eps %.1f\n", r.Name, r.MarginalEps, r.CellEps)
	}
	// Output:
	// workplace: marginal eps 4.0, per-cell eps 4.0
	// by-sex: marginal eps 4.0, per-cell eps 2.0
}

// Spearman rank correlation, the paper's ranking-fidelity metric.
func ExampleSpearman() {
	sdlRanking := []float64{100, 80, 60, 40, 20}
	dpRanking := []float64{98, 83, 55, 44, 18} // same order, noisy values
	fmt.Printf("%.2f\n", eree.Spearman(sdlRanking, dpRanking))
	// Output:
	// 1.00
}
