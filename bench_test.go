package eree

// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact, as indexed in DESIGN.md), plus
// ablation and micro-benchmarks for the mechanisms and substrates.
//
// Figure benchmarks run a reduced-trials version of the exact grid the
// paper sweeps; cmd/experiments prints the full 20-trial series.

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/lodes"
	"repro/internal/mech"
	"repro/internal/otm"
	"repro/internal/privacy"
	"repro/internal/pufferfish"
	"repro/internal/qwi"
	"repro/internal/sdl"
	"repro/internal/smooth"
	"repro/internal/suppress"
	"repro/internal/table"
)

var (
	benchOnce sync.Once
	benchData *lodes.Dataset
)

func benchDataset(b *testing.B) *lodes.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		benchData = lodes.MustGenerate(lodes.TestConfig(), dist.NewStreamFromSeed(1))
	})
	return benchData
}

func benchHarness(b *testing.B, trials int) *eval.Harness {
	b.Helper()
	h, err := eval.NewHarness(benchDataset(b), dist.NewStreamFromSeed(2), trials)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkTable1Matrix regenerates Table 1 (privacy definitions vs
// statutory requirements).
func BenchmarkTable1Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if eval.Table1Text() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2MinEpsilon regenerates Table 2 (minimum ε given α, δ).
func BenchmarkTable2MinEpsilon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := privacy.Table2()
		if len(rows) != 6 {
			b.Fatal("wrong row count")
		}
	}
}

func benchFigure(b *testing.B, run func(h *eval.Harness) (*eval.FigureResult, error)) {
	h := benchHarness(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(h)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFigure1Workload1L1 regenerates Figure 1: L1 error ratio of the
// place × industry × ownership marginal vs SDL.
func BenchmarkFigure1Workload1L1(b *testing.B) {
	benchFigure(b, (*eval.Harness).Figure1)
}

// BenchmarkFigure2Ranking1 regenerates Figure 2: Spearman correlation of
// Ranking 1 vs the SDL ranking.
func BenchmarkFigure2Ranking1(b *testing.B) {
	benchFigure(b, (*eval.Harness).Figure2)
}

// BenchmarkFigure3Workload2L1 regenerates Figure 3: L1 error ratio of
// single (sex × education) queries on the workplace marginal.
func BenchmarkFigure3Workload2L1(b *testing.B) {
	benchFigure(b, (*eval.Harness).Figure3)
}

// BenchmarkFigure4Workload3L1 regenerates Figure 4: L1 error ratio of the
// full worker × workplace marginal under the d·ε surcharge.
func BenchmarkFigure4Workload3L1(b *testing.B) {
	benchFigure(b, (*eval.Harness).Figure4)
}

// BenchmarkFigure5Ranking2 regenerates Figure 5: Spearman correlation of
// the females-with-college-degrees ranking.
func BenchmarkFigure5Ranking2(b *testing.B) {
	benchFigure(b, (*eval.Harness).Figure5)
}

// BenchmarkFinding6TruncatedLaplace regenerates the node-DP baseline
// sweep over θ ∈ {2,20,50,100,200,500}.
func BenchmarkFinding6TruncatedLaplace(b *testing.B) {
	h := benchHarness(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := h.Finding6()
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkAblationGammaBudgetSplit sweeps Smooth Gamma's ε₁/ε₂ split to
// show Algorithm 2's default (smallest valid ε₂) minimizes expected
// error — the design-choice ablation DESIGN.md calls out.
func BenchmarkAblationGammaBudgetSplit(b *testing.B) {
	in := mech.CellInput{Count: 500, MaxContribution: 200}
	def, err := mech.NewSmoothGamma(0.1, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	base := def.Split().Eps2
	extras := []float64{0, 0.2, 0.5, 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, bestErr := -1, 0.0
		for j, extra := range extras {
			m, err := mech.SmoothGammaWithSplit(0.1, 2.0, base+extra)
			if err != nil {
				b.Fatal(err)
			}
			if e := m.ExpectedL1(in); best < 0 || e < bestErr {
				best, bestErr = j, e
			}
		}
		if best != 0 {
			b.Fatal("default split no longer optimal")
		}
	}
}

// --- Micro-benchmarks: mechanisms ---

func benchCellMechanism(b *testing.B, m mech.CellMechanism) {
	s := dist.NewStreamFromSeed(3)
	in := mech.CellInput{Count: 1234, MaxContribution: 321}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ReleaseCell(in, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReleaseLogLaplace measures Algorithm 1's per-cell cost.
func BenchmarkReleaseLogLaplace(b *testing.B) {
	m, err := mech.NewLogLaplace(0.1, 2)
	if err != nil {
		b.Fatal(err)
	}
	benchCellMechanism(b, m)
}

// BenchmarkReleaseSmoothGamma measures Algorithm 2's per-cell cost
// (dominated by generalized-Cauchy inverse-CDF sampling).
func BenchmarkReleaseSmoothGamma(b *testing.B) {
	m, err := mech.NewSmoothGamma(0.1, 2)
	if err != nil {
		b.Fatal(err)
	}
	benchCellMechanism(b, m)
}

// BenchmarkReleaseSmoothLaplace measures Algorithm 3's per-cell cost.
func BenchmarkReleaseSmoothLaplace(b *testing.B) {
	m, err := mech.NewSmoothLaplace(0.1, 2, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	benchCellMechanism(b, m)
}

// BenchmarkReleaseEdgeLaplace measures the edge-DP baseline's per-cell cost.
func BenchmarkReleaseEdgeLaplace(b *testing.B) {
	m, err := mech.NewEdgeLaplace(2)
	if err != nil {
		b.Fatal(err)
	}
	benchCellMechanism(b, m)
}

// --- Micro-benchmarks: substrates ---

// BenchmarkGenCauchySample measures the inverse-CDF sampler behind
// Smooth Gamma.
func BenchmarkGenCauchySample(b *testing.B) {
	g := dist.GenCauchy{}
	s := dist.NewStreamFromSeed(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Sample(s)
	}
}

// BenchmarkLaplaceSample measures the Laplace sampler.
func BenchmarkLaplaceSample(b *testing.B) {
	l := dist.NewLaplace(1)
	s := dist.NewStreamFromSeed(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Sample(s)
	}
}

// BenchmarkMarginalCompute measures the indexed group-by engine on the
// Workload 1 marginal (with per-cell x_v tracking). The index is built
// before the timer, so this is the steady-state per-query cost.
func BenchmarkMarginalCompute(b *testing.B) {
	d := benchDataset(b)
	q := table.MustNewQuery(d.Schema(), lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership)
	d.WorkerFull.Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := table.Compute(d.WorkerFull, q)
		if m.Total() == 0 {
			b.Fatal("empty marginal")
		}
	}
}

// BenchmarkMarginalComputeUnpacked measures the same Workload 1 marginal
// through the unpacked scatter path: the attributes are requested in
// non-canonical order, so the compiled plan has no pack key and the scan
// decodes each attribute column separately. The gap to
// BenchmarkMarginalCompute is the bit-packed kernel's contribution (the
// two marginals hold the same counts under permuted cell indexing).
func BenchmarkMarginalComputeUnpacked(b *testing.B) {
	d := benchDataset(b)
	q := table.MustNewQuery(d.Schema(), lodes.AttrOwnership, lodes.AttrIndustry, lodes.AttrPlace)
	d.WorkerFull.Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := table.Compute(d.WorkerFull, q)
		if m.Total() == 0 {
			b.Fatal("empty marginal")
		}
	}
}

// BenchmarkMarginalComputeReference measures the seed engine — the scalar
// per-(cell, entity) hash-map group-by — on the same marginal, the
// baseline BENCH_baseline.json tracks the indexed engine against.
func BenchmarkMarginalComputeReference(b *testing.B) {
	d := benchDataset(b)
	q := table.MustNewQuery(d.Schema(), lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := table.ComputeReference(d.WorkerFull, q)
		if m.Total() == 0 {
			b.Fatal("empty marginal")
		}
	}
}

// BenchmarkBuildIndex measures the one-time cost of the entity-sorted
// index the engine amortizes across queries.
func BenchmarkBuildIndex(b *testing.B) {
	d := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if table.BuildIndex(d.WorkerFull).NumGroups() == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkComputeAllWorkloads measures the multi-query single-scan path
// on the two distinct workload attribute sets of Section 10.
func BenchmarkComputeAllWorkloads(b *testing.B) {
	d := benchDataset(b)
	qs := []*table.Query{
		table.MustNewQuery(d.Schema(), eval.Workload1Attrs()...),
		table.MustNewQuery(d.Schema(), eval.Workload2Attrs()...),
	}
	d.WorkerFull.Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := table.ComputeAll(d.WorkerFull, qs)
		if len(ms) != 2 || ms[0].Total() == 0 {
			b.Fatal("bad bulk result")
		}
	}
}

// BenchmarkSDLRelease measures the input-noise-infusion baseline on the
// Workload 1 marginal.
func BenchmarkSDLRelease(b *testing.B) {
	d := benchDataset(b)
	sys, err := sdl.NewSystem(sdl.DefaultConfig(), d.NumEstablishments(), dist.NewStreamFromSeed(6))
	if err != nil {
		b.Fatal(err)
	}
	q := table.MustNewQuery(d.Schema(), lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.ReleaseMarginal(d.WorkerFull, q, dist.NewStreamFromSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateDataset measures the synthetic LODES generator at the
// small test scale (~2k establishments).
func BenchmarkGenerateDataset(b *testing.B) {
	cfg := lodes.TestConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := lodes.MustGenerate(cfg, dist.NewStreamFromSeed(int64(i)))
		if d.NumJobs() == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkPublisherMarginal measures an end-to-end Smooth Laplace
// release of Workload 1 through the public pipeline. After the first
// iteration the truth is served from the marginal cache, so this is the
// cached steady-state cost — compare BenchmarkPublisherMarginalUncached,
// and BenchmarkMarginalComputeReference for what each release paid
// before the cache existed.
func BenchmarkPublisherMarginal(b *testing.B) {
	p := core.NewPublisher(benchDataset(b))
	req := core.Request{
		Attrs:     []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership},
		Mechanism: core.MechSmoothLaplace,
		Alpha:     0.1, Eps: 2, Delta: 0.05,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublisherMarginalUncached measures the same release with the
// marginal cache disabled: every iteration recomputes the truth via the
// indexed engine (the table-level index is still reused). The true seed
// baseline is BenchmarkMarginalComputeReference plus noise.
func BenchmarkPublisherMarginalUncached(b *testing.B) {
	p := core.NewPublisher(benchDataset(b))
	p.SetMarginalCacheEnabled(false)
	req := core.Request{
		Attrs:     []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership},
		Mechanism: core.MechSmoothLaplace,
		Alpha:     0.1, Eps: 2, Delta: 0.05,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublisherMarginalConcurrent measures cached serving
// throughput under concurrency: b.RunParallel workers all releasing the
// same warm Workload 1 marginal. The truth comes off the sharded
// copy-on-write cache (one atomic load, no lock), so throughput scales
// with GOMAXPROCS instead of flatlining on a shared mutex; on a
// single-core host the number reads as the sequential cached cost plus
// scheduler overhead (see BENCH_release_path.json's environment note).
func BenchmarkPublisherMarginalConcurrent(b *testing.B) {
	p := core.NewPublisher(benchDataset(b))
	req := core.Request{
		Attrs:     []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership},
		Mechanism: core.MechSmoothLaplace,
		Alpha:     0.1, Eps: 2, Delta: 0.05,
	}
	if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(0)); err != nil {
		b.Fatal(err) // warm the cache: the benchmark is the serving steady state
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(seq.Add(1))); err != nil {
				// b.Fatal is not legal off the benchmark goroutine.
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkPublisherSingleCellConcurrent measures the Workload 2
// serving shape (single queries) under concurrency — the pure
// cache-read regime where a shared mutex would dominate the
// microsecond-scale per-op work and flatline throughput.
func BenchmarkPublisherSingleCellConcurrent(b *testing.B) {
	p := core.NewPublisher(benchDataset(b))
	req := core.Request{
		Attrs:     []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership},
		Mechanism: core.MechSmoothGamma,
		Alpha:     0.1, Eps: 2,
	}
	m, err := p.Marginal(req.Attrs)
	if err != nil {
		b.Fatal(err)
	}
	var cellValues []string
	for cell := range m.Counts {
		if m.Counts[cell] > 0 {
			cellValues = m.Query.CellValues(cell)
			break
		}
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, _, err := p.ReleaseSingleCell(req, cellValues, dist.NewStreamFromSeed(seq.Add(1))); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkReleaseBatchConcurrent measures concurrent batch serving:
// each RunParallel iteration is a full 6-request grid batch over the
// warm cache, the shape a figure-regeneration fleet or a multi-tenant
// deployment drives.
func BenchmarkReleaseBatchConcurrent(b *testing.B) {
	p := core.NewPublisher(benchDataset(b))
	attrs := []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership}
	var reqs []core.Request
	for _, eps := range []float64{1, 2} {
		reqs = append(reqs,
			core.Request{Attrs: attrs, Mechanism: core.MechLogLaplace, Alpha: 0.1, Eps: 2 * eps},
			core.Request{Attrs: attrs, Mechanism: core.MechSmoothGamma, Alpha: 0.1, Eps: eps},
			core.Request{Attrs: attrs, Mechanism: core.MechSmoothLaplace, Alpha: 0.1, Eps: eps, Delta: 0.05},
		)
	}
	if _, err := p.ReleaseBatch(reqs, dist.NewStreamFromSeed(0)); err != nil {
		b.Fatal(err)
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rels, err := p.ReleaseBatch(reqs, dist.NewStreamFromSeed(seq.Add(1)))
			if err != nil {
				b.Error(err)
				return
			}
			if len(rels) != len(reqs) {
				b.Error("short batch")
				return
			}
		}
	})
}

// BenchmarkReleaseBatch measures a 6-request batch (three mechanisms ×
// two parameter points) over one cached marginal — the paper-grid shape
// the batched engine is built for.
func BenchmarkReleaseBatch(b *testing.B) {
	p := core.NewPublisher(benchDataset(b))
	attrs := []string{lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership}
	var reqs []core.Request
	for _, eps := range []float64{1, 2} {
		reqs = append(reqs,
			core.Request{Attrs: attrs, Mechanism: core.MechLogLaplace, Alpha: 0.1, Eps: 2 * eps},
			core.Request{Attrs: attrs, Mechanism: core.MechSmoothGamma, Alpha: 0.1, Eps: eps},
			core.Request{Attrs: attrs, Mechanism: core.MechSmoothLaplace, Alpha: 0.1, Eps: eps, Delta: 0.05},
		)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rels, err := p.ReleaseBatch(reqs, dist.NewStreamFromSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(rels) != len(reqs) {
			b.Fatal("short batch")
		}
	}
}

// BenchmarkReleaseCellsSequential and BenchmarkReleaseCellsParallel
// compare the scalar and chunked-worker noise pipelines on a
// Workload-1-sized cell vector (bit-identical outputs; only wall-clock
// differs).
func benchReleaseCellsWith(b *testing.B, release func(mech.CellMechanism, []mech.CellInput, *dist.Stream) ([]float64, error)) {
	m, err := mech.NewSmoothGamma(0.1, 2)
	if err != nil {
		b.Fatal(err)
	}
	cells := make([]mech.CellInput, 2400)
	for i := range cells {
		cells[i] = mech.CellInput{Count: float64((i * 37) % 900), MaxContribution: int64(1 + i%400)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := release(m, cells, dist.NewStreamFromSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReleaseCellsSequential(b *testing.B) {
	benchReleaseCellsWith(b, mech.ReleaseCellsSequential)
}

func BenchmarkReleaseCellsParallel(b *testing.B) {
	benchReleaseCellsWith(b, mech.ReleaseCells)
}

// --- Versioned-dataset benchmarks: quarterly deltas and epoch serving ---

// benchQuarters is the fixed chain length of the advance benchmarks:
// every op replays the same deterministic pregenerated chain, so ns/op
// does not drift with b.N and stays comparable across runs (the CI
// gate depends on that).
const benchQuarters = 8

var (
	benchDeltaOnce  sync.Once
	benchDeltaData  *lodes.Dataset
	benchDeltaChain []*lodes.Delta
)

// benchDeltaSetup generates the experiment-scale snapshot (~20k
// establishments, ~0.4M jobs) and a deterministic chain of
// benchQuarters default quarterly deltas against it, shared by the
// advance benchmarks.
func benchDeltaSetup(b *testing.B) (*lodes.Dataset, []*lodes.Delta) {
	b.Helper()
	benchDeltaOnce.Do(func() {
		benchDeltaData = lodes.MustGenerate(lodes.DefaultConfig(), dist.NewStreamFromSeed(1))
		cur := benchDeltaData
		for q := 0; q < benchQuarters; q++ {
			dl, err := lodes.GenerateDelta(cur, lodes.DefaultDeltaConfig(), dist.NewStreamFromSeed(int64(2+q)))
			if err != nil {
				panic(err)
			}
			benchDeltaChain = append(benchDeltaChain, dl)
			if cur, err = cur.ApplyDelta(dl); err != nil {
				panic(err)
			}
		}
	})
	return benchDeltaData, benchDeltaChain
}

func benchDeltaWorkloads() [][]string {
	return [][]string{eval.Workload1Attrs(), eval.Workload2Attrs()}
}

// BenchmarkAdvanceIncremental measures absorbing the pregenerated
// 8-quarter delta chain through the incremental maintenance path: per
// quarter, Publisher.Advance — ApplyDelta (span-wise snapshot
// construction), MergeIndex (O(groups) group-boundary merge, no
// counting sort, no column gather), short-circuit selective
// invalidation — followed by re-warming the two workload marginals.
// Compare BenchmarkAdvanceRebuild, which replays the identical chain
// and ends every quarter in the same warm state via a from-scratch
// index build, so the difference is exactly what incremental
// maintenance saves. This is the benchmark the CI gate tracks
// (BENCH_incremental.json).
func BenchmarkAdvanceIncremental(b *testing.B) {
	d, chain := benchDeltaSetup(b)
	w := benchDeltaWorkloads()
	d.WorkerFull.Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewPublisher(d)
		if err := p.PrefetchMarginals(w); err != nil {
			b.Fatal(err)
		}
		for _, dl := range chain {
			if err := p.Advance(dl); err != nil {
				b.Fatal(err)
			}
			if err := p.PrefetchMarginals(w); err != nil {
				b.Fatal(err)
			}
		}
		if p.Epoch() != benchQuarters {
			b.Fatal("chain did not advance")
		}
	}
}

// BenchmarkAdvanceRebuild is the counterfactual: the identical chain
// absorbed by rebuilding everything per quarter — ApplyDelta, a full
// BuildIndex rescan of the successor (counting sort plus per-attribute
// column gathers on first query), a cold publisher, and the same
// two-marginal prefetch.
func BenchmarkAdvanceRebuild(b *testing.B) {
	d, chain := benchDeltaSetup(b)
	w := benchDeltaWorkloads()
	d.WorkerFull.Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := d
		p := core.NewPublisher(cur)
		if err := p.PrefetchMarginals(w); err != nil {
			b.Fatal(err)
		}
		for _, dl := range chain {
			var err error
			if cur, err = cur.ApplyDelta(dl); err != nil {
				b.Fatal(err)
			}
			cur.WorkerFull.AdoptIndex(table.BuildIndex(cur.WorkerFull))
			p = core.NewPublisher(cur)
			if err := p.PrefetchMarginals(w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMergeIndexIncremental isolates the index-maintenance kernel:
// deriving the successor's entity-sorted index from the base layout
// plus the delta's touched set. Compare BenchmarkBuildIndex (the full
// counting-sort build at the same scale is the TestConfig variant;
// this one runs at experiment scale, so compare the ratio, not the
// absolute).
func BenchmarkMergeIndexIncremental(b *testing.B) {
	d, chain := benchDeltaSetup(b)
	dl := chain[0]
	next, err := d.ApplyDelta(dl)
	if err != nil {
		b.Fatal(err)
	}
	ids, rows := dl.Touched(d)
	base := d.WorkerFull.Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.MergeIndex(base, next.WorkerFull, ids, rows); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	benchPatchOnce    sync.Once
	benchPatchBaseIx  *table.Index
	benchPatchTables  []*table.Table
	benchPatchTouched [][]int32
	benchPatchRows    [][]int32
	benchPatchKept    [][]int32
	benchPatchQs      []*table.Query
	benchPatchViews   []*table.MarginalView
)

// benchPatchChain generates the cache-maintenance chain: the same base
// snapshot as benchDeltaSetup, advanced by benchQuarters deltas drawn
// from the BED-calibrated churn regime (lodes.CalibratedDeltaConfig —
// ~70% of survivors post no net employment change, so a quarter
// touches a minority of establishments, as real quarterly frames do).
// The ingest benchmarks above keep the harsher every-survivor-shocked
// DefaultDeltaConfig chain; correctness is regime-independent (the
// differential suites run both).
func benchPatchChain(b *testing.B) (*lodes.Dataset, []*lodes.Delta) {
	b.Helper()
	d, _ := benchDeltaSetup(b)
	chain := make([]*lodes.Delta, 0, benchQuarters)
	cur := d
	for q := 0; q < benchQuarters; q++ {
		dl, err := lodes.GenerateDelta(cur, lodes.CalibratedDeltaConfig(), dist.NewStreamFromSeed(int64(2+q)))
		if err != nil {
			b.Fatal(err)
		}
		chain = append(chain, dl)
		if cur, err = cur.ApplyDelta(dl); err != nil {
			b.Fatal(err)
		}
	}
	return d, chain
}

// benchWarmWorkingSet is the warm cache the maintenance benchmarks
// carry across the chain: a multi-tenant working set of eight
// marginals — every subset of the establishment attributes (the QWI
// publication axes) plus the paper's Workload 2 (which also covers
// Workload 3's attribute set) — the "affected marginals" whose
// per-quarter upkeep the eviction counterfactual pays a full table
// scan each for.
func benchWarmWorkingSet() [][]string {
	return [][]string{
		{lodes.AttrPlace},
		{lodes.AttrIndustry},
		{lodes.AttrOwnership},
		{lodes.AttrPlace, lodes.AttrIndustry},
		{lodes.AttrPlace, lodes.AttrOwnership},
		{lodes.AttrIndustry, lodes.AttrOwnership},
		eval.Workload1Attrs(),
		eval.Workload2Attrs(),
	}
}

// benchPatchSetup precomputes everything the maintenance benchmarks
// replay — successor tables, per-quarter touched/rows/kept vectors,
// queries, and one pristine maintained view per working-set marginal
// on the base index — so the timed region is exactly the per-quarter
// cache-maintenance step (no ApplyDelta, no publisher machinery).
func benchPatchSetup(b *testing.B) {
	b.Helper()
	d, chain := benchPatchChain(b)
	benchPatchOnce.Do(func() {
		cur := d
		benchPatchBaseIx = cur.WorkerFull.Index()
		for _, dl := range chain {
			ids, rows, kept := dl.TouchedKept(cur)
			next, err := cur.ApplyDelta(dl)
			if err != nil {
				panic(err)
			}
			benchPatchTables = append(benchPatchTables, next.WorkerFull)
			benchPatchTouched = append(benchPatchTouched, ids)
			benchPatchRows = append(benchPatchRows, rows)
			benchPatchKept = append(benchPatchKept, kept)
			cur = next
		}
		for _, attrs := range benchWarmWorkingSet() {
			q, err := table.NewQuery(d.Schema(), attrs...)
			if err != nil {
				panic(err)
			}
			v, err := table.NewMarginalView(benchPatchBaseIx, q)
			if err != nil {
				panic(err)
			}
			benchPatchQs = append(benchPatchQs, q)
			benchPatchViews = append(benchPatchViews, v)
		}
	})
}

// benchFreshChain rebuilds the chain's merged indexes from scratch.
// Both maintenance benchmarks call it per iteration, untimed, so every
// timed quarter runs against a merged index that — like a production
// advance's — has served no prior scans. That keeps the counterfactual
// honest: the scan kernel only builds its packed fused-key column for
// a plan after packScanThreshold scans of the same index, so an
// evict+rescan server recomputing each truth once per fresh quarterly
// index never crosses the threshold and always pays the unpacked scan.
// Reusing one prebuilt chain across iterations would let the rescans
// warm up per-index plan state b.N times and run against packed
// columns no real advance would ever have built.
func benchFreshChain(b *testing.B) []*table.Index {
	b.Helper()
	ixs := make([]*table.Index, benchQuarters+1)
	ixs[0] = benchPatchBaseIx
	for q := 0; q < benchQuarters; q++ {
		ix, err := table.MergeIndex(ixs[q], benchPatchTables[q], benchPatchTouched[q], benchPatchRows[q])
		if err != nil {
			b.Fatal(err)
		}
		ixs[q+1] = ix
	}
	return ixs
}

// BenchmarkAdvancePatched measures the cache-maintenance step of the
// incremental path in isolation: carrying the warm working set across
// the calibrated 8-quarter chain by patching maintained views — one
// shared PatchFrame per quarter (table.NewPatchFrame), then
// MarginalView.ApplyFrame per marginal, O(changed rows) each, no
// rescan. Compare BenchmarkAdvanceEvictRescan, the pre-maintenance
// behavior on the identical chain and working set. Both end every
// quarter with the same bit-identical truths (the differential suites
// in internal/table/patch_test.go and internal/core/epoch_test.go
// prove it), so the ratio is exactly what patching saves. This is the
// benchmark the CI gate tracks (BENCH_incremental.json).
func BenchmarkAdvancePatched(b *testing.B) {
	benchPatchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ixs := benchFreshChain(b)
		views := make([]*table.MarginalView, len(benchPatchViews))
		for j, v := range benchPatchViews {
			views[j] = v.Clone()
		}
		// Drain the GC debt the untimed chain rebuild ran up, so the
		// collector's mark work (a whole core's worth on a small machine)
		// doesn't land inside timed quarters at random. The rescan
		// counterfactual does the same at the same point.
		runtime.GC()
		b.StartTimer()
		for q := 0; q < benchQuarters; q++ {
			f, err := table.NewPatchFrame(ixs[q], ixs[q+1], benchPatchTouched[q], benchPatchKept[q])
			if err != nil {
				b.Fatal(err)
			}
			for _, v := range views {
				if _, _, err := v.ApplyFrame(f); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkAdvanceEvictRescan is the counterfactual: the same working
// set maintained across the same chain by eviction — every quarter,
// each cached marginal is recomputed with a full pass over the
// successor's entity-sorted index (what a cache miss pays after the
// old selective-invalidation path dropped the entry). The per-quarter
// cost is O(affected marginals × table rows) regardless of how little
// the delta changed. Indexes come fresh from benchFreshChain, exactly
// as the patched benchmark's do.
func BenchmarkAdvanceEvictRescan(b *testing.B) {
	benchPatchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ixs := benchFreshChain(b)
		runtime.GC() // symmetric with BenchmarkAdvancePatched
		b.StartTimer()
		for q := 0; q < benchQuarters; q++ {
			for _, qu := range benchPatchQs {
				if m := ixs[q+1].Compute(qu); len(m.Counts) == 0 {
					b.Fatal("empty marginal")
				}
			}
		}
	}
}

// BenchmarkReleaseDuringAdvance measures serving latency while the
// publisher continuously absorbs quarterly deltas in the background —
// the serve-during-update regime the epoch-snapshot design exists for.
// Releases that land just after an advance pay the evicted marginal's
// rescan; the benchmark reports how many advances completed so the mix
// is visible. (Background updates make per-op noise inherent; the
// number is not gated.)
func BenchmarkReleaseDuringAdvance(b *testing.B) {
	d, _ := benchDeltaSetup(b)
	p := core.NewPublisher(d)
	_ = d.WorkerFull.Index()
	req := core.Request{
		Attrs:     eval.Workload1Attrs(),
		Mechanism: core.MechSmoothLaplace,
		Alpha:     0.1, Eps: 2, Delta: 0.05,
	}
	if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(0)); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	var advances atomic.Int64
	go func() {
		defer close(done)
		seed := int64(100)
		for {
			select {
			case <-stop:
				return
			default:
			}
			dl, err := lodes.GenerateDelta(p.Dataset(), lodes.DefaultDeltaConfig(), dist.NewStreamFromSeed(seed))
			if err != nil {
				b.Error(err)
				return
			}
			if err := p.Advance(dl); err != nil {
				b.Error(err)
				return
			}
			advances.Add(1)
			seed++
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(int64(i))); err != nil {
			b.Error(err)
			break
		}
	}
	b.StopTimer()
	close(stop)
	<-done
	b.ReportMetric(float64(advances.Load()), "advances")
}

// --- Paper-scale benchmarks (lodes.LargeConfig) ---
//
// These run the workload suite against the ~500k-establishment /
// ~10M-job dataset — the magnitude of the paper's 3-state 2011 sample.
// Generating that dataset takes tens of seconds, so the whole group is
// gated behind EREE_LARGE_BENCH=1; scripts/bench.sh (the canonical
// regeneration path for the BENCH JSON files) sets it, while the
// compile-only CI bench job leaves it unset and skips.

var (
	benchLargeOnce sync.Once
	benchLargeData *lodes.Dataset
)

func benchLargeDataset(b *testing.B) *lodes.Dataset {
	b.Helper()
	if os.Getenv("EREE_LARGE_BENCH") == "" {
		b.Skip("paper-scale benchmark: set EREE_LARGE_BENCH=1 (scripts/bench.sh does)")
	}
	benchLargeOnce.Do(func() {
		benchLargeData = lodes.MustGenerate(lodes.LargeConfig(), dist.NewStreamFromSeed(1))
	})
	return benchLargeData
}

// BenchmarkLargeScaleBuildIndex measures the one-time index build (the
// counting sort over ~10M rows) at paper scale. Column materialization
// is lazy — charged to the first query that touches each attribute —
// so its cost shows up in the scan benchmarks' first iterations, not
// here.
func BenchmarkLargeScaleBuildIndex(b *testing.B) {
	d := benchLargeDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if table.BuildIndex(d.WorkerFull).NumGroups() == 0 {
			b.Fatal("empty index")
		}
	}
}

// BenchmarkLargeScaleMarginalCompute measures the Workload 1 marginal
// through the scatter kernel at paper scale (~10M rows per op).
func BenchmarkLargeScaleMarginalCompute(b *testing.B) {
	d := benchLargeDataset(b)
	q := table.MustNewQuery(d.Schema(), eval.Workload1Attrs()...)
	d.WorkerFull.Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := table.Compute(d.WorkerFull, q)
		if m.Total() == 0 {
			b.Fatal("empty marginal")
		}
	}
}

// BenchmarkLargeScaleComputeAllWorkloads measures the single-scan
// evaluation of the full workload suite (Workloads 1 and 2/3 share an
// attribute set) at paper scale.
func BenchmarkLargeScaleComputeAllWorkloads(b *testing.B) {
	d := benchLargeDataset(b)
	qs := []*table.Query{
		table.MustNewQuery(d.Schema(), eval.Workload1Attrs()...),
		table.MustNewQuery(d.Schema(), eval.Workload2Attrs()...),
	}
	d.WorkerFull.Index()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := table.ComputeAll(d.WorkerFull, qs)
		if len(ms) != 2 || ms[0].Total() == 0 {
			b.Fatal("bad bulk result")
		}
	}
}

// BenchmarkLargeScaleReleaseBatch measures the Workload 1 release grid
// (three mechanisms × two ε) end-to-end at paper scale with a warm
// marginal cache — the serving-path steady state.
func BenchmarkLargeScaleReleaseBatch(b *testing.B) {
	p := core.NewPublisher(benchLargeDataset(b))
	attrs := eval.Workload1Attrs()
	var reqs []core.Request
	for _, eps := range []float64{1, 2} {
		reqs = append(reqs,
			core.Request{Attrs: attrs, Mechanism: core.MechLogLaplace, Alpha: 0.1, Eps: 2 * eps},
			core.Request{Attrs: attrs, Mechanism: core.MechSmoothGamma, Alpha: 0.1, Eps: eps},
			core.Request{Attrs: attrs, Mechanism: core.MechSmoothLaplace, Alpha: 0.1, Eps: eps, Delta: 0.05},
		)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rels, err := p.ReleaseBatch(reqs, dist.NewStreamFromSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if len(rels) != len(reqs) {
			b.Fatal("short batch")
		}
	}
}

// BenchmarkLargeScaleWorkload3Release measures the full worker ×
// workplace marginal release (Workload 3, the d·ε regime) at paper
// scale: tens of thousands of cells of smooth-sensitivity noise per op.
func BenchmarkLargeScaleWorkload3Release(b *testing.B) {
	p := core.NewPublisher(benchLargeDataset(b))
	req := core.Request{
		Attrs:     eval.Workload3Attrs(),
		Mechanism: core.MechSmoothLaplace,
		Alpha:     0.1, Eps: 16, Delta: 0.05,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ReleaseMarginal(req, dist.NewStreamFromSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeScaleSingleCells measures the Workload 2 regime (single
// queries) at paper scale: per-cell releases served from the warm
// marginal cache.
func BenchmarkLargeScaleSingleCells(b *testing.B) {
	p := core.NewPublisher(benchLargeDataset(b))
	req := core.Request{
		Attrs:     eval.Workload2Attrs(),
		Mechanism: core.MechSmoothGamma,
		Alpha:     0.1, Eps: 2,
	}
	m, err := p.Marginal(req.Attrs)
	if err != nil {
		b.Fatal(err)
	}
	var cellValues []string
	for cell := range m.Counts {
		if m.Counts[cell] > 0 {
			cellValues = m.Query.CellValues(cell)
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := p.ReleaseSingleCell(req, cellValues, dist.NewStreamFromSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// --- National-scale benchmarks (lodes.NationalConfig) ---
//
// These exercise the chunk-streamed generation path at the order of the
// real national LODES frame (~7M establishments, ~130M jobs). One op is
// a full pass over the relation, which takes minutes; the group is
// gated behind EREE_NATIONAL_BENCH=1 (scripts/bench.sh -national sets
// it) and is meant to be run with -benchtime=1x.

var (
	benchNationalOnce  sync.Once
	benchNationalFrame *lodes.Frame
	benchNationalErr   error
)

func benchNationalFrameFor(b *testing.B) *lodes.Frame {
	b.Helper()
	if os.Getenv("EREE_NATIONAL_BENCH") == "" {
		b.Skip("national-scale benchmark: set EREE_NATIONAL_BENCH=1 (scripts/bench.sh -national does)")
	}
	benchNationalOnce.Do(func() {
		benchNationalFrame, benchNationalErr =
			lodes.GenerateFrame(lodes.NationalConfig(), dist.NewStreamFromSeed(1))
	})
	if benchNationalErr != nil {
		b.Fatal(benchNationalErr)
	}
	return benchNationalFrame
}

// BenchmarkNationalStreamIngest measures the end-to-end streaming ingest
// shape at national scale: draw the job relation chunk-wise off the
// establishment frame and fold each chunk into an accumulated Workload 1
// marginal. Peak memory is one chunk plus the frame — the full relation
// is never materialized. Reports rows/s over the whole relation.
func BenchmarkNationalStreamIngest(b *testing.B) {
	f := benchNationalFrameFor(b)
	q := table.MustNewQuery(f.Schema, lodes.AttrPlace, lodes.AttrIndustry, lodes.AttrOwnership)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Split off a fresh per-iteration stream so every op draws the
		// identical job sequence.
		s := dist.NewStreamFromSeed(1).Split("workers-bench")
		counts := make([]int64, q.NumCells())
		rows := 0
		if err := f.StreamJobs(s, lodes.DefaultChunkRows, func(c *table.Table) error {
			m := table.Compute(c, q)
			for cell, v := range m.Counts {
				counts[cell] += v
			}
			rows += c.NumRows()
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		if rows != f.TotalJobs {
			b.Fatalf("streamed %d rows, want %d", rows, f.TotalJobs)
		}
	}
	b.ReportMetric(float64(f.TotalJobs)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkNationalFrameGenerate measures drawing the establishment
// frame alone (places + ~7M establishments, no job rows) — the fixed
// setup cost every national streaming consumer pays once.
func BenchmarkNationalFrameGenerate(b *testing.B) {
	if os.Getenv("EREE_NATIONAL_BENCH") == "" {
		b.Skip("national-scale benchmark: set EREE_NATIONAL_BENCH=1 (scripts/bench.sh -national does)")
	}
	for i := 0; i < b.N; i++ {
		f, err := lodes.GenerateFrame(lodes.NationalConfig(), dist.NewStreamFromSeed(1))
		if err != nil {
			b.Fatal(err)
		}
		if f.TotalJobs < 100_000_000 {
			b.Fatalf("national frame implies only %d jobs", f.TotalJobs)
		}
	}
}

// BenchmarkSpearman measures the tie-aware rank correlation on
// Workload-1-sized vectors.
func BenchmarkSpearman(b *testing.B) {
	s := dist.NewStreamFromSeed(7)
	n := 2400
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = s.Float64()
		y[i] = x[i] + 0.1*s.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Spearman(x, y)
	}
}

// BenchmarkSmoothSensitivity measures the Lemma 8.5 computation.
func BenchmarkSmoothSensitivity(b *testing.B) {
	sp, err := smooth.GammaSplit(2, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := smooth.Sensitivity(int64(i%10000), 0.1, sp.B); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Benchmarks for the extension modules ---

// BenchmarkSuppressionPipeline measures the Appendix A baseline: primary
// + audited complementary suppression on the industry × place table.
func BenchmarkSuppressionPipeline(b *testing.B) {
	d := benchDataset(b)
	q := table.MustNewQuery(d.Schema(), lodes.AttrIndustry, lodes.AttrPlace)
	m := table.Compute(d.WorkerFull, q)
	tab, err := suppress.FromMarginal(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		primary := suppress.Primary(tab,
			suppress.ThresholdRule{MinContributors: 3},
			suppress.PPercentRule{P: 10})
		full := suppress.Complementary(tab, primary)
		if full.Count() < primary.Count() {
			b.Fatal("complement lost suppressions")
		}
	}
}

// BenchmarkSuppressionAudit measures the interval auditor alone.
func BenchmarkSuppressionAudit(b *testing.B) {
	d := benchDataset(b)
	q := table.MustNewQuery(d.Schema(), lodes.AttrIndustry, lodes.AttrPlace)
	m := table.Compute(d.WorkerFull, q)
	tab, err := suppress.FromMarginal(m)
	if err != nil {
		b.Fatal(err)
	}
	full := suppress.Complementary(tab, suppress.Primary(tab, suppress.ThresholdRule{MinContributors: 3}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(suppress.Audit(tab, full)) == 0 {
			b.Fatal("no suppressed cells")
		}
	}
}

// BenchmarkQWIFlowRelease measures the two-quarter flow pipeline: panel
// evolution, flow computation, and the 3-release DP publication.
func BenchmarkQWIFlowRelease(b *testing.B) {
	d := benchDataset(b)
	panel, err := qwi.GeneratePanel(d, qwi.DefaultPanelConfig(), dist.NewStreamFromSeed(31))
	if err != nil {
		b.Fatal(err)
	}
	q := table.MustNewQuery(d.Schema(), lodes.AttrPlace, lodes.AttrIndustry)
	flows, err := qwi.ComputeFlows(panel, q)
	if err != nil {
		b.Fatal(err)
	}
	m, err := mech.NewSmoothLaplace(0.1, 2, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qwi.ReleaseFlows(flows, m, dist.NewStreamFromSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPufferfishVerify measures the Bayes-factor verifier on the
// employee-requirement universe.
func BenchmarkPufferfishVerify(b *testing.B) {
	m, err := mech.NewSmoothGamma(0.1, 2)
	if err != nil {
		b.Fatal(err)
	}
	worlds := pufferfish.EmployeeWorlds(1000, 40, 0.5)
	grid := pufferfish.DefaultGrid(worlds[0].Input, worlds[1].Input)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pufferfish.MaxBayesFactor(m, worlds,
			func(w pufferfish.World) bool { return w.Label == "in" },
			func(w pufferfish.World) bool { return w.Label == "out" },
			2, grid)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Satisfied {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkTopKOverlap measures the ranked-list membership metric.
func BenchmarkTopKOverlap(b *testing.B) {
	s := dist.NewStreamFromSeed(32)
	n := 2400
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = s.Float64()
		y[i] = x[i] + 0.05*s.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.TopKOverlap(x, y, 50)
	}
}

// BenchmarkKolmogorovSmirnov measures the sampler-validation test.
func BenchmarkKolmogorovSmirnov(b *testing.B) {
	l := dist.NewLaplace(1)
	s := dist.NewStreamFromSeed(33)
	sample := make([]float64, 10000)
	for i := range sample {
		sample[i] = l.Sample(s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dist.KolmogorovSmirnov(sample, l.CDF); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnTheMapSynthesis measures the Dirichlet-multinomial
// residence synthesizer over a full OD matrix.
func BenchmarkOnTheMapSynthesis(b *testing.B) {
	d := benchDataset(b)
	od := otm.SyntheticOD(d, dist.NewStreamFromSeed(40))
	sy, err := otm.NewSynthesizer(2, 500, otm.MinPrior(2, 500))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sy.Synthesize(od, dist.NewStreamFromSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
