#!/usr/bin/env bash
# Boots ereeserve -demo on a local port, drives it with ereeload, and
# fails unless every request comes back 200 and an admin epoch advance
# lands while the server is warm. Then runs the durability leg: a
# stateful server is killed with SIGKILL mid-life, restarted over the
# same state directory, and must recover the exact spend and serve the
# identical reissued workload from its replay cache without charging a
# second time. CI runs this as the end-to-end smoke of the serving
# stack: real binaries, real sockets, real JSON, real kill -9.
#
# Usage:
#   scripts/serve_smoke.sh            # bounded smoke (300 requests)
#   scripts/serve_smoke.sh -record    # canonical cold+warm recording
#                                     # workload for BENCH_serve.json
#
# The recording mode's numbers are host-dependent; BENCH_serve.json's
# environment block states the recording host. EREE_SMOKE_PORT
# overrides the default port 18080 (the durability leg uses port+1).
set -euo pipefail
cd "$(dirname "$0")/.."

record=0
[[ "${1:-}" == "-record" ]] && record=1

port="${EREE_SMOKE_PORT:-18080}"
base="http://127.0.0.1:$port"
bin="$(mktemp -d)"
pids=()
trap 'for p in ${pids[@]+"${pids[@]}"}; do kill -9 "$p" 2>/dev/null || true; done; rm -rf "$bin"' EXIT

go build -o "$bin/ereeserve" ./cmd/ereeserve
go build -o "$bin/ereeload" ./cmd/ereeload

# wait_ready polls /readyz — not /healthz — because a recovering server
# is live long before it may serve traffic.
wait_ready() {
  for _ in $(seq 1 100); do
    curl -fs "$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "serve smoke: $1 never became ready" >&2
  return 1
}

tenant_spent() {
  curl -fs -H "X-API-Key: tenant-alpha-key" "$1/v1/stats" \
    | grep -o '"spent_eps": *[0-9.eE+-]*'
}

"$bin/ereeserve" -demo -addr "127.0.0.1:$port" &
pids+=($!)
wait_ready "$base"
curl -fs "$base/healthz" >/dev/null

run_load() {
  "$bin/ereeload" -url "$base" -key tenant-alpha-key -n "$1" -conc 8 -seed 1
}

if [[ "$record" == 1 ]]; then
  echo "== cold (first run after boot) =="
  run_load 2000
  echo "== warm =="
  run_load 2000
  echo "Copy the summaries into BENCH_serve.json (and keep its environment block honest)."
  exit 0
fi

out="$(run_load 300)"
echo "$out"
echo "$out" | grep -q '"errors": 0' || { echo "serve smoke: transport errors" >&2; exit 1; }
echo "$out" | grep -q '"200": 300' || { echo "serve smoke: non-200 responses" >&2; exit 1; }
curl -fs -X POST -H "X-API-Key: admin-demo-key" -d '{"quarters":1}' "$base/v1/admin/advance" \
  | grep -q '"epoch":1' || { echo "serve smoke: admin advance failed" >&2; exit 1; }
curl -fs "$base/healthz" | grep -q '"epoch":1' \
  || { echo "serve smoke: new epoch not visible on /healthz" >&2; exit 1; }

echo "== durable leg: kill -9, recover, replay =="
dport=$((port + 1))
dbase="http://127.0.0.1:$dport"
state="$bin/state"

"$bin/ereeserve" -demo -addr "127.0.0.1:$dport" -state-dir "$state" &
dpid=$!
pids+=("$dpid")
wait_ready "$dbase"

run_durable() {
  "$bin/ereeload" -url "$dbase" -key tenant-alpha-key -n 200 -conc 8 -seed 7
}
dout="$(run_durable)"
echo "$dout" | grep -q '"200": 200' || { echo "serve smoke: durable load failed" >&2; exit 1; }
spent_before="$(tenant_spent "$dbase")"
[[ -n "$spent_before" ]] || { echo "serve smoke: no spend reported" >&2; exit 1; }

kill -9 "$dpid"
wait "$dpid" 2>/dev/null || true

"$bin/ereeserve" -demo -addr "127.0.0.1:$dport" -state-dir "$state" &
dpid=$!
pids+=("$dpid")
wait_ready "$dbase"

spent_recovered="$(tenant_spent "$dbase")"
[[ "$spent_recovered" == "$spent_before" ]] \
  || { echo "serve smoke: spend changed across kill -9 ($spent_before -> $spent_recovered)" >&2; exit 1; }

# Reissue the byte-identical workload (same seed, same seqs): every
# request replays from the durable cache — all 200, nothing re-charged.
dout2="$(run_durable)"
echo "$dout2" | grep -q '"200": 200' || { echo "serve smoke: replayed load failed" >&2; exit 1; }
spent_after="$(tenant_spent "$dbase")"
[[ "$spent_after" == "$spent_before" ]] \
  || { echo "serve smoke: replay double-charged ($spent_before -> $spent_after)" >&2; exit 1; }

# The durable server drains cleanly on SIGTERM.
kill "$dpid"
wait "$dpid" 2>/dev/null || { echo "serve smoke: durable server did not exit cleanly" >&2; exit 1; }

echo "== two-node leg: follower mirrors, primary killed, follower promoted =="
pport=$((port + 2)); fport=$((port + 3))
pbase="http://127.0.0.1:$pport"; fbase="http://127.0.0.1:$fport"

"$bin/ereeserve" -demo -addr "127.0.0.1:$pport" -state-dir "$bin/pstate" &
ppid=$!
pids+=("$ppid")
wait_ready "$pbase"
"$bin/ereeserve" -demo -addr "127.0.0.1:$fport" -state-dir "$bin/fstate" \
  -replicate-from "$pbase" -repl-poll 25ms &
fpid=$!
pids+=("$fpid")
wait_ready "$fbase"

# /readyz is JSON with the node's role, term, and replication lag —
# what a load balancer routes on without an authenticated status call.
curl -fs "$pbase/readyz" | grep -q '"role":"primary"' \
  || { echo "serve smoke: primary /readyz does not report its role" >&2; exit 1; }
fready="$(curl -fs "$fbase/readyz")"
echo "$fready" | grep -q '"role":"follower"' \
  || { echo "serve smoke: follower /readyz does not report its role: $fready" >&2; exit 1; }
echo "$fready" | grep -q '"replication_lag_records":' \
  || { echo "serve smoke: follower /readyz lacks replication lag: $fready" >&2; exit 1; }

# Drive the pair with the follower FIRST in the endpoint list: every
# request's first attempt lands on the follower, is shed with 503 + a
# primary hint, and the deterministic failover walk retries it on the
# primary — all 200 in the end.
pair_load() {
  "$bin/ereeload" -url "$fbase,$pbase" -key tenant-alpha-key -n 24 -conc 8 -seed 11
}
pout="$(pair_load)"
echo "$pout" | grep -q '"200": 24' || { echo "serve smoke: pair load failed: $pout" >&2; exit 1; }

# The follower converges on the primary's exact spend, visible through
# its own (read-only) /v1/stats.
spent_primary="$(tenant_spent "$pbase")"
for _ in $(seq 1 100); do
  [[ "$(tenant_spent "$fbase")" == "$spent_primary" ]] && break
  sleep 0.1
done
[[ "$(tenant_spent "$fbase")" == "$spent_primary" ]] \
  || { echo "serve smoke: follower never mirrored the primary's spend" >&2; exit 1; }

# Machine failure: kill -9 the primary, promote the follower.
kill -9 "$ppid"
wait "$ppid" 2>/dev/null || true
curl -fs -X POST -H "X-API-Key: admin-demo-key" "$fbase/v1/admin/promote" \
  | grep -q '"role":"primary"' || { echo "serve smoke: promotion failed" >&2; exit 1; }
curl -fs "$fbase/readyz" | grep -q '"role":"primary"' \
  || { echo "serve smoke: promoted node /readyz still a follower" >&2; exit 1; }

# Reissue the byte-identical workload against the promoted node (the
# dead primary stays in the endpoint list; failover walks past it):
# every request replays from the mirrored dedup cache — spend unchanged.
pout2="$(pair_load)"
echo "$pout2" | grep -q '"200": 24' || { echo "serve smoke: post-failover replay failed: $pout2" >&2; exit 1; }
[[ "$(tenant_spent "$fbase")" == "$spent_primary" ]] \
  || { echo "serve smoke: failover replay double-charged ($spent_primary -> $(tenant_spent "$fbase"))" >&2; exit 1; }

# The promoted node drains cleanly.
kill "$fpid"
wait "$fpid" 2>/dev/null || { echo "serve smoke: promoted node did not exit cleanly" >&2; exit 1; }

echo "serve smoke OK"
