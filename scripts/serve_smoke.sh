#!/usr/bin/env bash
# Boots ereeserve -demo on a local port, drives it with ereeload, and
# fails unless every request comes back 200 and an admin epoch advance
# lands while the server is warm. CI runs this as the end-to-end smoke
# of the serving stack: real binaries, real sockets, real JSON.
#
# Usage:
#   scripts/serve_smoke.sh            # bounded smoke (300 requests)
#   scripts/serve_smoke.sh -record    # canonical cold+warm recording
#                                     # workload for BENCH_serve.json
#
# The recording mode's numbers are host-dependent; BENCH_serve.json's
# environment block states the recording host. EREE_SMOKE_PORT
# overrides the default port 18080.
set -euo pipefail
cd "$(dirname "$0")/.."

record=0
[[ "${1:-}" == "-record" ]] && record=1

port="${EREE_SMOKE_PORT:-18080}"
base="http://127.0.0.1:$port"
bin="$(mktemp -d)"
srv_pid=""
trap '[[ -n "$srv_pid" ]] && kill "$srv_pid" 2>/dev/null || true; rm -rf "$bin"' EXIT

go build -o "$bin/ereeserve" ./cmd/ereeserve
go build -o "$bin/ereeload" ./cmd/ereeload

"$bin/ereeserve" -demo -addr "127.0.0.1:$port" &
srv_pid=$!
for _ in $(seq 1 50); do
  curl -fs "$base/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fs "$base/healthz" >/dev/null

run_load() {
  "$bin/ereeload" -url "$base" -key tenant-alpha-key -n "$1" -conc 8 -seed 1
}

if [[ "$record" == 1 ]]; then
  echo "== cold (first run after boot) =="
  run_load 2000
  echo "== warm =="
  run_load 2000
  echo "Copy the summaries into BENCH_serve.json (and keep its environment block honest)."
else
  out="$(run_load 300)"
  echo "$out"
  echo "$out" | grep -q '"errors": 0' || { echo "serve smoke: transport errors" >&2; exit 1; }
  echo "$out" | grep -q '"200": 300' || { echo "serve smoke: non-200 responses" >&2; exit 1; }
  curl -fs -X POST -H "X-API-Key: admin-demo-key" -d '{"quarters":1}' "$base/v1/admin/advance" \
    | grep -q '"epoch":1' || { echo "serve smoke: admin advance failed" >&2; exit 1; }
  curl -fs "$base/healthz" | grep -q '"epoch":1' \
    || { echo "serve smoke: new epoch not visible on /healthz" >&2; exit 1; }
  echo "serve smoke OK"
fi
