#!/usr/bin/env bash
# Canonical benchmark regeneration for BENCH_baseline.json,
# BENCH_scan_kernel.json, BENCH_release_path.json, BENCH_incremental.json,
# BENCH_serve.json and BENCH_multicore.json (BENCH_serve.json's
# end-to-end load numbers come from scripts/serve_smoke.sh -record). The
# JSON files' numbers come from this script's flags — never from ad-hoc
# invocations — so recorded runs stay comparable across PRs:
#
#   micro suite:        go test -run '^$' -bench . -benchtime 2s .
#   paper-scale suite:  EREE_LARGE_BENCH=1 go test -run '^$' \
#                         -bench BenchmarkLargeScale -benchtime 20x .
#   multicore sweep:    go test -run '^$' -bench <scan+release set> \
#                         -benchtime 2s -cpu 1,2,4,8 .
#   national suite:     EREE_NATIONAL_BENCH=1 go test -run '^$' \
#                         -bench BenchmarkNational -benchtime 1x .
#
# Usage: scripts/bench.sh [-multicore] [-national] [output-file]
#
# Default (no mode flag): micro + serving + paper-scale suites; copy the
# ns/op numbers into the JSON files by hand afterwards. The CI gate
# (scripts/benchgate) compares future runs against the committed "gate"
# sections.
#
# -multicore: runs the scan-kernel and release-path benchmarks across
# GOMAXPROCS 1,2,4,8 and rewrites BENCH_multicore.json via
# `scripts/benchgate -emit-multicore` (scaling curves, per-core-count
# gates, and the recording host's core-count caveat). Sweep columns
# above the host's NumCPU measure oversubscription, not scaling — the
# emitted environment block says so.
#
# -national: runs the chunk-streamed national-scale suite (~7M
# establishments, ~130M jobs; one op is a full pass over the relation,
# so -benchtime 1x and expect minutes per benchmark).
#
# The paper-scale suite generates the lodes.LargeConfig() dataset (~500k
# establishments, ~10M jobs) once per process — expect tens of seconds
# of setup before the first LargeScale benchmark reports.
#
# Recording-host caveat: the *Concurrent benchmarks (b.RunParallel), the
# sequential-vs-parallel release pair, and every multicore sweep column
# are meaningful only relative to the recording host's core count.
# BENCH_release_path.json's environment block states the host's
# GOMAXPROCS and BENCH_multicore.json's states NumCPU; when re-recording
# on a host with a different core count, update those blocks rather than
# mixing numbers across hosts.
set -euo pipefail
cd "$(dirname "$0")/.."

multicore=0
national=0
while [[ $# -gt 0 && $1 == -* ]]; do
  case "$1" in
    -multicore) multicore=1 ;;
    -national) national=1 ;;
    *) echo "usage: scripts/bench.sh [-multicore] [-national] [output-file]" >&2; exit 2 ;;
  esac
  shift
done

if [[ $multicore -eq 1 ]]; then
  out="${1:-bench_multicore.txt}"
  echo "== multicore sweep (-benchtime 2s -cpu 1,2,4,8) ==" | tee "$out"
  go test -run '^$' \
    -bench 'BenchmarkMarginalCompute$|BenchmarkMarginalComputeUnpacked$|BenchmarkComputeAllWorkloads$|BenchmarkReleaseBatch$|BenchmarkPublisherMarginalConcurrent$|BenchmarkReleaseCellsParallel$' \
    -benchtime 2s -cpu 1,2,4,8 -timeout 60m . | tee -a "$out"
  go run ./scripts/benchgate -emit-multicore BENCH_multicore.json -output "$out"
  echo
  echo "Wrote $out and BENCH_multicore.json (sweep, scaling curves, per-cpu gates,"
  echo "host caveat). Commit BENCH_multicore.json as the scaling record."
  exit 0
fi

if [[ $national -eq 1 ]]; then
  out="${1:-bench_national.txt}"
  echo "== national-scale suite (EREE_NATIONAL_BENCH=1, -benchtime 1x) ==" | tee "$out"
  EREE_NATIONAL_BENCH=1 go test -run '^$' -bench BenchmarkNational -benchtime 1x -timeout 120m . | tee -a "$out"
  echo
  echo "Wrote $out. One op of BenchmarkNationalStreamIngest is a full streamed"
  echo "pass over the ~130M-row national relation; its rows/s metric is the"
  echo "ingest throughput record."
  exit 0
fi

out="${1:-bench_output.txt}"

echo "== micro suite (-benchtime 2s) ==" | tee "$out"
go test -run '^$' -bench . -benchtime 2s -timeout 60m . | tee -a "$out"

echo "== serving suite (-benchtime 2s) ==" | tee -a "$out"
go test -run '^$' -bench . -benchtime 2s -timeout 60m ./cmd/ereeserve/server/ | tee -a "$out"

echo "== paper-scale suite (EREE_LARGE_BENCH=1, -benchtime 20x) ==" | tee -a "$out"
EREE_LARGE_BENCH=1 go test -run '^$' -bench BenchmarkLargeScale -benchtime 20x -timeout 60m . | tee -a "$out"

echo
echo "Wrote $out. Update BENCH_baseline.json / BENCH_scan_kernel.json /"
echo "BENCH_release_path.json / BENCH_incremental.json / BENCH_serve.json from"
echo "it. (The advance benchmarks replay a fixed 8-quarter delta chain per op —"
echo "see BENCH_incremental.json's chain_note before comparing per-quarter"
echo "numbers. BENCH_serve.json's end-to-end load numbers come from"
echo "scripts/serve_smoke.sh -record, not from this script. The multicore sweep"
echo "and national suite are separate modes: scripts/bench.sh -multicore /"
echo "-national.)"
