#!/usr/bin/env bash
# Canonical benchmark regeneration for BENCH_baseline.json,
# BENCH_scan_kernel.json, BENCH_release_path.json, BENCH_incremental.json
# and BENCH_serve.json (the handler benchmark; its end-to-end load numbers
# come from scripts/serve_smoke.sh -record). The JSON files' numbers come from this
# script's flags — never from ad-hoc invocations — so recorded runs
# stay comparable across PRs:
#
#   micro suite:        go test -run '^$' -bench . -benchtime 2s .
#   paper-scale suite:  EREE_LARGE_BENCH=1 go test -run '^$' \
#                         -bench BenchmarkLargeScale -benchtime 20x .
#
# Usage: scripts/bench.sh [output-file]
#
# The paper-scale suite generates the lodes.LargeConfig() dataset (~500k
# establishments, ~10M jobs) once per process — expect tens of seconds
# of setup before the first LargeScale benchmark reports. After a run,
# copy the ns/op numbers into the JSON files by hand; the CI gate
# (scripts/benchgate) compares future runs against the committed "gate"
# sections of BENCH_scan_kernel.json and BENCH_release_path.json.
#
# Recording-host caveat: the *Concurrent benchmarks (b.RunParallel) and
# the sequential-vs-parallel release pair are meaningful only relative
# to the recording host's core count. BENCH_release_path.json's
# environment block states the host's GOMAXPROCS; when re-recording on
# a host with a different core count, update that block (or keep its
# single-core caveat) rather than mixing numbers across hosts.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench_output.txt}"

echo "== micro suite (-benchtime 2s) ==" | tee "$out"
go test -run '^$' -bench . -benchtime 2s -timeout 60m . | tee -a "$out"

echo "== serving suite (-benchtime 2s) ==" | tee -a "$out"
go test -run '^$' -bench . -benchtime 2s -timeout 60m ./cmd/ereeserve/server/ | tee -a "$out"

echo "== paper-scale suite (EREE_LARGE_BENCH=1, -benchtime 20x) ==" | tee -a "$out"
EREE_LARGE_BENCH=1 go test -run '^$' -bench BenchmarkLargeScale -benchtime 20x -timeout 60m . | tee -a "$out"

echo
echo "Wrote $out. Update BENCH_baseline.json / BENCH_scan_kernel.json /"
echo "BENCH_release_path.json / BENCH_incremental.json / BENCH_serve.json from"
echo "it. (The advance benchmarks replay a fixed 8-quarter delta chain per op —"
echo "see BENCH_incremental.json's chain_note before comparing per-quarter"
echo "numbers. BENCH_serve.json's end-to-end load numbers come from"
echo "scripts/serve_smoke.sh -record, not from this script.)"
