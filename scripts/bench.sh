#!/usr/bin/env bash
# Canonical benchmark regeneration for BENCH_baseline.json and
# BENCH_scan_kernel.json. Both JSON files' numbers come from this
# script's flags — never from ad-hoc invocations — so recorded runs stay
# comparable across PRs:
#
#   micro suite:        go test -run '^$' -bench . -benchtime 2s .
#   paper-scale suite:  EREE_LARGE_BENCH=1 go test -run '^$' \
#                         -bench BenchmarkLargeScale -benchtime 20x .
#
# Usage: scripts/bench.sh [output-file]
#
# The paper-scale suite generates the lodes.LargeConfig() dataset (~500k
# establishments, ~10M jobs) once per process — expect tens of seconds
# of setup before the first LargeScale benchmark reports. After a run,
# copy the ns/op numbers into the JSON files by hand; the CI gate
# (scripts/benchgate) compares future runs against the committed
# "gate" section of BENCH_scan_kernel.json.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-bench_output.txt}"

echo "== micro suite (-benchtime 2s) ==" | tee "$out"
go test -run '^$' -bench . -benchtime 2s -timeout 60m . | tee -a "$out"

echo "== paper-scale suite (EREE_LARGE_BENCH=1, -benchtime 20x) ==" | tee -a "$out"
EREE_LARGE_BENCH=1 go test -run '^$' -bench BenchmarkLargeScale -benchtime 20x -timeout 60m . | tee -a "$out"

echo
echo "Wrote $out. Update BENCH_baseline.json / BENCH_scan_kernel.json from it."
