// Command benchgate compares `go test -bench` output against the
// committed reference numbers in one or more BENCH JSON files and fails
// when a gated benchmark regresses beyond the tolerance factor.
//
// Usage:
//
//	go test -run '^$' -bench 'MarginalCompute$|ReleaseCellsSequential$' . > bench.txt
//	go run ./scripts/benchgate -baseline BENCH_scan_kernel.json,BENCH_release_path.json -output bench.txt
//
// Each baseline file's "gate" object maps benchmark names to reference
// ns/op; -baseline takes a comma-separated list and the gates are
// merged (a benchmark gated in two files must satisfy the stricter
// reference). The gate is deliberately tolerant (default 1.5×): shared
// CI runners are noisy, and the point is to catch order-of-magnitude
// regressions (a reintroduced per-cell allocation, a lost fast path),
// not single-digit drift. CI skips the gate when the commit message
// contains [skip-bench-gate].
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type baseline struct {
	Gate map[string]float64 `json:"gate"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_scan_kernel.json", "comma-separated BENCH JSON files, each with a gate section")
	outputPath := flag.String("output", "-", "go test -bench output to check ('-' for stdin)")
	factor := flag.Float64("factor", 1.5, "maximum allowed ns/op ratio vs the reference")
	flag.Parse()

	base := baseline{Gate: make(map[string]float64)}
	for _, path := range strings.Split(*baselinePath, ",") {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal("read baseline: %v", err)
		}
		var b baseline
		if err := json.Unmarshal(raw, &b); err != nil {
			fatal("parse %s: %v", path, err)
		}
		if len(b.Gate) == 0 {
			fatal("%s has no gate section", path)
		}
		for name, ref := range b.Gate {
			if prev, ok := base.Gate[name]; !ok || ref < prev {
				base.Gate[name] = ref
			}
		}
	}

	var in io.Reader = os.Stdin
	if *outputPath != "-" {
		f, err := os.Open(*outputPath)
		if err != nil {
			fatal("open bench output: %v", err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBenchOutput(in)
	if err != nil {
		fatal("parse bench output: %v", err)
	}

	failed := false
	for name, ref := range base.Gate {
		got, ok := measured[name]
		if !ok {
			fmt.Printf("FAIL %s: not found in bench output (benchmark rotted or filter too narrow)\n", name)
			failed = true
			continue
		}
		ratio := got / ref
		status := "ok"
		if ratio > *factor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-4s %s: %.0f ns/op vs reference %.0f (%.2fx, limit %.2fx)\n",
			status, name, got, ref, ratio, *factor)
	}
	if failed {
		fmt.Println("benchmark gate failed; if the regression is intended, rerun scripts/bench.sh,")
		fmt.Println("update the gate numbers, or tag the commit message with [skip-bench-gate]")
		os.Exit(1)
	}
}

// parseBenchOutput extracts ns/op per benchmark from testing's output
// (lines like "BenchmarkFoo-4   123   4567 ns/op ..."). The -N
// GOMAXPROCS suffix is stripped; multiple samples of one benchmark
// (-count > 1) keep the fastest, which is the noise-robust choice for a
// regression gate.
func parseBenchOutput(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var nsOp float64
		found := false
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
				}
				nsOp, found = v, true
				break
			}
		}
		if !found {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		if prev, ok := out[name]; !ok || nsOp < prev {
			out[name] = nsOp
		}
	}
	return out, sc.Err()
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}
