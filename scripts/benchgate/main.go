// Command benchgate compares `go test -bench` output against the
// committed reference numbers in one or more BENCH JSON files and fails
// when a gated benchmark regresses beyond the tolerance factor.
//
// Usage:
//
//	go test -run '^$' -bench 'MarginalCompute$|ReleaseCellsSequential$' . > bench.txt
//	go run ./scripts/benchgate -baseline BENCH_scan_kernel.json,BENCH_release_path.json -output bench.txt
//
//	go test -run '^$' -bench 'MarginalCompute$' -cpu 1,2,4,8 . > sweep.txt
//	go run ./scripts/benchgate -emit-multicore BENCH_multicore.json -output sweep.txt
//
// Each baseline file's "gate" object maps benchmark names to reference
// ns/op, compared regardless of the run's GOMAXPROCS (shared-runner
// gates tolerate core-count drift; the 1.5× default factor absorbs it).
// A "gate_by_cpu" object maps GOMAXPROCS values to per-benchmark
// references and is compared exactly per core count: a measured sample
// of a gate_by_cpu benchmark at a core count with no recorded column
// fails loudly — the fix is to re-record the sweep on the gating host
// (scripts/bench.sh -multicore), never to compare across core counts
// silently. -baseline takes a comma-separated list and the gates are
// merged (a benchmark gated in two files must satisfy the stricter
// reference).
//
// -emit-multicore switches the command from gating to recording: it
// parses a -cpu sweep's output and writes the multi-core scaling record
// (sweep ns/op per core count, speedup curves vs the 1-core column, a
// gate_by_cpu section for future runs, and an environment block stating
// the recording host's core count — scaling curves are only meaningful
// relative to it).
//
// The gate is deliberately tolerant (default 1.5×): shared CI runners
// are noisy, and the point is to catch order-of-magnitude regressions
// (a reintroduced per-cell allocation, a lost fast path), not
// single-digit drift. CI skips the gate when the commit message
// contains [skip-bench-gate].
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	Gate      map[string]float64            `json:"gate"`
	GateByCPU map[string]map[string]float64 `json:"gate_by_cpu"`
}

// benchKey identifies one benchmark sample: the name with the
// GOMAXPROCS suffix split off (testing appends "-N" when N != 1, so a
// bare name means a 1-proc run).
type benchKey struct {
	name string
	cpu  int
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_scan_kernel.json", "comma-separated BENCH JSON files, each with a gate and/or gate_by_cpu section")
	outputPath := flag.String("output", "-", "go test -bench output to check ('-' for stdin)")
	factor := flag.Float64("factor", 1.5, "maximum allowed ns/op ratio vs the reference")
	emitMulticore := flag.String("emit-multicore", "", "write a multi-core scaling record (BENCH_multicore.json) from a -cpu sweep's output instead of gating")
	flag.Parse()

	var in io.Reader = os.Stdin
	if *outputPath != "-" {
		f, err := os.Open(*outputPath)
		if err != nil {
			fatal("open bench output: %v", err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBenchOutput(in)
	if err != nil {
		fatal("parse bench output: %v", err)
	}

	if *emitMulticore != "" {
		if err := writeMulticore(*emitMulticore, measured); err != nil {
			fatal("emit multicore record: %v", err)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *emitMulticore, len(benchNames(measured)))
		return
	}

	gate := make(map[string]float64)
	gateByCPU := make(map[string]map[string]float64)
	for _, path := range strings.Split(*baselinePath, ",") {
		raw, err := os.ReadFile(path)
		if err != nil {
			fatal("read baseline: %v", err)
		}
		var b baseline
		if err := json.Unmarshal(raw, &b); err != nil {
			fatal("parse %s: %v", path, err)
		}
		if len(b.Gate) == 0 && len(b.GateByCPU) == 0 {
			fatal("%s has no gate or gate_by_cpu section", path)
		}
		for name, ref := range b.Gate {
			if prev, ok := gate[name]; !ok || ref < prev {
				gate[name] = ref
			}
		}
		for cpu, gates := range b.GateByCPU {
			if _, err := strconv.Atoi(cpu); err != nil {
				fatal("%s: gate_by_cpu key %q is not a core count", path, cpu)
			}
			merged := gateByCPU[cpu]
			if merged == nil {
				merged = make(map[string]float64)
				gateByCPU[cpu] = merged
			}
			for name, ref := range gates {
				if prev, ok := merged[name]; !ok || ref < prev {
					merged[name] = ref
				}
			}
		}
	}

	failed := false
	check := func(name string, got, ref float64, label string) {
		ratio := got / ref
		status := "ok"
		if ratio > *factor {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-4s %s%s: %.0f ns/op vs reference %.0f (%.2fx, limit %.2fx)\n",
			status, name, label, got, ref, ratio, *factor)
	}

	// Core-count-agnostic gates: the fastest sample of the name at any
	// GOMAXPROCS must satisfy the reference (pre-existing behavior).
	for _, name := range sortedKeys(gate) {
		got, ok := fastestAnyCPU(measured, name)
		if !ok {
			fmt.Printf("FAIL %s: not found in bench output (benchmark rotted or filter too narrow)\n", name)
			failed = true
			continue
		}
		check(name, got, gate[name], "")
	}

	// Per-core-count gates: every measured sample of a gated name must
	// have a reference column for its exact GOMAXPROCS.
	gatedNames := make(map[string]bool)
	for _, gates := range gateByCPU {
		for name := range gates {
			gatedNames[name] = true
		}
	}
	for _, name := range sortedKeys(gatedNames) {
		found := false
		for key, got := range measured {
			if key.name != name {
				continue
			}
			found = true
			refs, ok := gateByCPU[strconv.Itoa(key.cpu)]
			ref, okName := refs[name]
			if !ok || !okName {
				fmt.Printf("FAIL %s-%d: no baseline recorded for GOMAXPROCS=%d — re-record the sweep on the gating host (scripts/bench.sh -multicore), do not compare across core counts\n",
					name, key.cpu, key.cpu)
				failed = true
				continue
			}
			check(name, got, ref, fmt.Sprintf("-%d", key.cpu))
		}
		if !found {
			fmt.Printf("FAIL %s: not found in bench output (benchmark rotted or filter too narrow)\n", name)
			failed = true
		}
	}

	if failed {
		fmt.Println("benchmark gate failed; if the regression is intended, rerun scripts/bench.sh,")
		fmt.Println("update the gate numbers, or tag the commit message with [skip-bench-gate]")
		os.Exit(1)
	}
}

// parseBenchOutput extracts ns/op per (benchmark, GOMAXPROCS) from
// testing's output (lines like "BenchmarkFoo-4   123   4567 ns/op ...").
// The -N suffix is the run's GOMAXPROCS; its absence means 1. Multiple
// samples of one key (-count > 1) keep the fastest, which is the
// noise-robust choice for a regression gate.
func parseBenchOutput(r io.Reader) (map[benchKey]float64, error) {
	out := make(map[benchKey]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var nsOp float64
		found := false
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
				}
				nsOp, found = v, true
				break
			}
		}
		if !found {
			continue
		}
		key := benchKey{name: fields[0], cpu: 1}
		if i := strings.LastIndex(key.name, "-"); i > 0 {
			if n, err := strconv.Atoi(key.name[i+1:]); err == nil && n > 0 {
				key.name, key.cpu = key.name[:i], n
			}
		}
		if prev, ok := out[key]; !ok || nsOp < prev {
			out[key] = nsOp
		}
	}
	return out, sc.Err()
}

// writeMulticore renders a -cpu sweep into the committed scaling
// record: ns/op per core count, speedups vs the 1-proc column, a
// gate_by_cpu section, and the recording host's environment.
func writeMulticore(path string, measured map[benchKey]float64) error {
	names := benchNames(measured)
	if len(names) == 0 {
		return fmt.Errorf("no benchmark samples in output")
	}

	sweep := make(map[string]map[string]float64)
	speedup := make(map[string]map[string]float64)
	gateByCPU := make(map[string]map[string]float64)
	for key, ns := range measured {
		cpu := strconv.Itoa(key.cpu)
		if sweep[key.name] == nil {
			sweep[key.name] = make(map[string]float64)
		}
		sweep[key.name][cpu] = ns
		if gateByCPU[cpu] == nil {
			gateByCPU[cpu] = make(map[string]float64)
		}
		gateByCPU[cpu][key.name] = ns
	}
	for name, byCPU := range sweep {
		base, ok := byCPU["1"]
		if !ok {
			continue
		}
		speedup[name] = make(map[string]float64)
		for cpu, ns := range byCPU {
			speedup[name][cpu] = round2(base / ns)
		}
	}

	record := struct {
		Description string                        `json:"description"`
		Environment map[string]any                `json:"environment"`
		SweepNsOp   map[string]map[string]float64 `json:"sweep_ns_op"`
		SpeedupVs1  map[string]map[string]float64 `json:"speedup_vs_1cpu"`
		GateByCPU   map[string]map[string]float64 `json:"gate_by_cpu"`
	}{
		Description: "Multi-core scaling record: ns/op per GOMAXPROCS for the sharded scan and parallel release paths, recorded from one -cpu sweep (scripts/bench.sh -multicore owns the canonical flags; this file is written by scripts/benchgate -emit-multicore, never by hand). gate_by_cpu is what scripts/benchgate compares per-core-count runs against — a run at a core count with no recorded column fails the gate with instructions to re-record, so numbers are never compared across core counts.",
		Environment: map[string]any{
			"goos":    runtime.GOOS,
			"goarch":  runtime.GOARCH,
			"go":      runtime.Version(),
			"num_cpu": runtime.NumCPU(),
			"cpu":     cpuModel(),
			"host_caveat": fmt.Sprintf(
				"recorded on a host with NumCPU=%d: sweep columns at -cpu above that measure goroutine oversubscription of the same cores, not parallel scaling, and every per-cpu number is only comparable on a host with the same core count and cpu model",
				runtime.NumCPU()),
		},
		SweepNsOp:  sweep,
		SpeedupVs1: speedup,
		GateByCPU:  gateByCPU,
	}
	raw, err := json.MarshalIndent(record, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

func benchNames(measured map[benchKey]float64) []string {
	set := make(map[string]bool)
	for key := range measured {
		set[key.name] = true
	}
	return sortedKeys(set)
}

func fastestAnyCPU(measured map[benchKey]float64, name string) (float64, bool) {
	best, found := 0.0, false
	for key, ns := range measured {
		if key.name == name && (!found || ns < best) {
			best, found = ns, true
		}
	}
	return best, found
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func round2(x float64) float64 { return float64(int(x*100+0.5)) / 100 }

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1)
}

func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "unknown"
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, v, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(v)
			}
		}
	}
	return "unknown"
}
