package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sweepOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU @ 2.10GHz
BenchmarkMarginalCompute    	   10000	    100000 ns/op	     160 B/op	      11 allocs/op
BenchmarkMarginalCompute-2  	   20000	     60000 ns/op
BenchmarkMarginalCompute-4  	   30000	     40000 ns/op
BenchmarkMarginalCompute-4  	   30000	     42000 ns/op
BenchmarkReleaseBatch-2     	     500	   1200000 ns/op
PASS
`

func TestParseBenchOutputSplitsCPUSuffix(t *testing.T) {
	measured, err := parseBenchOutput(strings.NewReader(sweepOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[benchKey]float64{
		{"BenchmarkMarginalCompute", 1}: 100000,
		{"BenchmarkMarginalCompute", 2}: 60000,
		{"BenchmarkMarginalCompute", 4}: 40000, // fastest of the two -4 samples
		{"BenchmarkReleaseBatch", 2}:    1200000,
	}
	if len(measured) != len(want) {
		t.Fatalf("parsed %d samples, want %d: %v", len(measured), len(want), measured)
	}
	for key, ns := range want {
		if measured[key] != ns {
			t.Errorf("%s-%d = %v, want %v", key.name, key.cpu, measured[key], ns)
		}
	}
}

func TestWriteMulticoreRecord(t *testing.T) {
	measured, err := parseBenchOutput(strings.NewReader(sweepOutput))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_multicore.json")
	if err := writeMulticore(path, measured); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Environment map[string]any                `json:"environment"`
		SweepNsOp   map[string]map[string]float64 `json:"sweep_ns_op"`
		SpeedupVs1  map[string]map[string]float64 `json:"speedup_vs_1cpu"`
		GateByCPU   map[string]map[string]float64 `json:"gate_by_cpu"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	if got := rec.SweepNsOp["BenchmarkMarginalCompute"]["4"]; got != 40000 {
		t.Errorf("sweep[-4] = %v, want 40000 (fastest sample)", got)
	}
	if got := rec.SpeedupVs1["BenchmarkMarginalCompute"]["4"]; got != 2.5 {
		t.Errorf("speedup[-4] = %v, want 2.5", got)
	}
	// ReleaseBatch has no 1-cpu column, so it gets no speedup curve —
	// but its sample must still land in the per-cpu gate.
	if _, ok := rec.SpeedupVs1["BenchmarkReleaseBatch"]; ok {
		t.Error("speedup curve emitted without a 1-cpu baseline column")
	}
	if got := rec.GateByCPU["2"]["BenchmarkReleaseBatch"]; got != 1200000 {
		t.Errorf("gate_by_cpu[2] = %v, want 1200000", got)
	}
	if _, ok := rec.Environment["host_caveat"]; !ok {
		t.Error("environment block is missing the host core-count caveat")
	}
}
